"""Deterministic fault injection for the executor backends.

A :class:`FaultPlan` is a seeded, declarative description of the failures a
run should suffer: worker crashes, hangs, transient exceptions, slow jobs
and corrupt-on-write records.  Every injection decision is a pure function
of ``(plan seed, fault index, job_id, attempt)`` — no wall clock, no global
counters — so the same plan injects the *same* faults into the same jobs on
every machine, in any execution order, serially or across a process pool.
That is what makes the retry/timeout/quarantine paths of the
:class:`~repro.api.runner.Runner` testable as ordinary CI regressions: the
chaos gate runs a scenario under a plan with ~20 % injected crashes and
asserts the final store is bit-identical to a fault-free run.

The five fault kinds and where they strike:

========== ==================================================================
kind       effect
========== ==================================================================
crash      pool worker: ``os._exit`` (a lost worker, as after an OOM kill);
           in-process backends raise :class:`InjectedCrashError` instead so
           the serial path stays testable
hang       ``time.sleep(seconds)`` before the job body — with a
           ``job_timeout`` the worker is detected as lost and killed, without
           one the job is merely late
transient  raise :class:`InjectedTransientError` (classified transient, so
           a retry budget absorbs it)
slow       ``time.sleep(seconds)``, then run the job normally
corrupt    the job *succeeds* but its store record is truncated mid-write
           (the writer believes the write worked; the next resume discards
           and re-executes — the PR 6 recovery path)
========== ==================================================================

Pre-execution faults (everything but ``corrupt``) are injected by
:func:`repro.api.runner.execute_job` before the job body; ``corrupt`` is
applied by the runner's commit step after the record is written.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Dict, Mapping, Optional, Sequence, Tuple

#: The fault kinds a :class:`FaultSpec` may declare.
FAULT_KINDS = ("crash", "hang", "transient", "slow", "corrupt")

#: Exit code of an injected worker crash (distinguishable from a real one).
CRASH_EXIT_CODE = 43


class FaultPlanError(ValueError):
    """Raised for structurally invalid fault-plan descriptions."""


class InjectedTransientError(RuntimeError):
    """A ``transient`` fault: fails the attempt, classified as retryable."""


class InjectedCrashError(RuntimeError):
    """A ``crash`` fault injected into an in-process backend.

    Pool workers die for real (``os._exit``); an in-process backend cannot,
    so the crash is simulated by this exception — classified transient, like
    the lost-worker failure it stands in for.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault of a :class:`FaultPlan`.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        rate: Injection probability per ``(job, attempt)`` in ``[0, 1]``.
        match: Optional substring filter on the ``job_id``; empty matches
            every job.
        attempts: Optional attempt filter — inject only on the listed
            attempt numbers (0 = first try).  Empty means every attempt;
            ``attempts=(0,)`` makes a fault that a single retry always
            clears, which is how chaos plans guarantee convergence.
        seconds: Sleep duration of ``hang``/``slow`` faults.
    """

    kind: str
    rate: float = 1.0
    match: str = ""
    attempts: Tuple[int, ...] = ()
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}; "
                                 f"known: {', '.join(FAULT_KINDS)}")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1], "
                                 f"got {self.rate}")
        if self.seconds <= 0:
            raise FaultPlanError(f"fault seconds must be positive, "
                                 f"got {self.seconds}")
        if any(attempt < 0 for attempt in self.attempts):
            raise FaultPlanError("fault attempts must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (round-trips via :meth:`from_dict`)."""
        data: Dict[str, object] = {"kind": self.kind, "rate": self.rate}
        if self.match:
            data["match"] = self.match
        if self.attempts:
            data["attempts"] = list(self.attempts)
        if self.kind in ("hang", "slow"):
            data["seconds"] = self.seconds
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        """Build from a mapping (unknown fields rejected)."""
        unknown = set(data) - {"kind", "rate", "match", "attempts", "seconds"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault field(s): {', '.join(sorted(unknown))}")
        if "kind" not in data:
            raise FaultPlanError("fault needs a 'kind' field")
        return cls(kind=str(data["kind"]),
                   rate=float(data.get("rate", 1.0)),
                   match=str(data.get("match", "")),
                   attempts=tuple(int(a) for a in data.get("attempts", ())),
                   seconds=float(data.get("seconds", 30.0)))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults to inject into a run.

    Injection decisions are deterministic: fault ``i`` strikes job ``j`` on
    attempt ``a`` iff ``Random(crc32(seed/i/j/a)).random() < rate`` — the
    same everywhere, independent of execution order or process boundaries.
    Specs are consulted in declaration order and the first hit wins, so a
    plan can layer a rare crash over a common slow-down.

    Attributes:
        seed: Seed mixed into every injection decision.
        faults: The declared :class:`FaultSpec` entries.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def draw(self, job_id: str, attempt: int) -> Optional[FaultSpec]:
        """The fault injected into ``(job_id, attempt)``, if any.

        Pure and deterministic — safe to call from any process, any number
        of times, with identical results.
        """
        for index, spec in enumerate(self.faults):
            if spec.match and spec.match not in job_id:
                continue
            if spec.attempts and attempt not in spec.attempts:
                continue
            token = f"{self.seed}/{index}/{spec.kind}/{job_id}/{attempt}"
            rng = Random(zlib.crc32(token.encode()) & 0x7FFFFFFF)
            if rng.random() < spec.rate:
                return spec
        return None

    def apply(self, job_id: str, attempt: int,
              in_worker: bool = False) -> None:
        """Inject the drawn pre-execution fault, if any.

        Called by :func:`repro.api.runner.execute_job` before the job body.
        ``corrupt`` faults are commit-side and do nothing here (see
        :meth:`corrupts`).

        Args:
            job_id: The job about to execute.
            attempt: Zero-based attempt number of this execution.
            in_worker: True inside a pool worker process, where a ``crash``
                fault may genuinely kill the process; in-process execution
                raises :class:`InjectedCrashError` instead.

        Raises:
            InjectedTransientError: for a ``transient`` fault.
            InjectedCrashError: for a ``crash`` fault outside a pool worker.
        """
        spec = self.draw(job_id, attempt)
        if spec is None:
            return
        if spec.kind == "transient":
            raise InjectedTransientError(
                f"injected transient fault for job {job_id!r} "
                f"(attempt {attempt})")
        if spec.kind == "crash":
            if in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrashError(
                f"injected worker crash for job {job_id!r} "
                f"(attempt {attempt}); simulated in-process")
        if spec.kind in ("hang", "slow"):
            time.sleep(spec.seconds)

    def corrupts(self, job_id: str, attempt: int) -> bool:
        """True when a ``corrupt`` fault strikes ``(job_id, attempt)``.

        Consulted by the runner *after* the record file is written; the
        record on disk is then truncated as if the writing process had been
        killed mid-write.
        """
        spec = self.draw(job_id, attempt)
        return spec is not None and spec.kind == "corrupt"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (round-trips via :meth:`from_dict`)."""
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        """Build a plan from its dict form.

        Raises:
            FaultPlanError: for unknown fields or invalid fault entries.
        """
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan field(s): {', '.join(sorted(unknown))}")
        faults: Sequence = data.get("faults", ())
        return cls(seed=int(data.get("seed", 0)),
                   faults=tuple(FaultSpec.from_dict(item) for item in faults))

    @classmethod
    def from_file(cls, path: Path) -> "FaultPlan":
        """Load a plan from a JSON file (the ``cli run --fault-plan`` form).

        Raises:
            FaultPlanError: when the file is missing, not JSON, or invalid.
        """
        path = Path(path)
        if not path.exists():
            raise FaultPlanError(f"fault-plan file {path} does not exist")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid fault-plan JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultPlanError("fault-plan JSON must be an object")
        return cls.from_dict(data)


def corrupt_record_file(path: Path) -> None:
    """Truncate a just-written record file as a kill-mid-write would.

    The file keeps a valid-looking prefix but is no longer parseable JSON,
    which is exactly what the resume path's corrupt-record discard handles.
    """
    path = Path(path)
    text = path.read_text()
    path.write_text(text[: max(1, len(text) // 2)].rstrip("}\n \t") or "{")
