"""Cost-model calibration: turn past run manifests into wall-time forecasts.

:meth:`JobSpec.estimated_cost <repro.api.scenario.JobSpec.estimated_cost>`
is deliberately unit-free — the scheduler only needs the *ordering*.  But a
finished store manifest pairs every record's measured ``elapsed_seconds``
with its ``estimated_cost``, which is exactly the calibration data needed to
give the unit a meaning: :func:`fit_cost_model` fits milliseconds-per-cost-
unit from those pairs (least squares through the origin, so a job of zero
cost predicts zero seconds), and the resulting :class:`CostModel` predicts
the wall time of any job list before it runs.

``repro.cli run scenario.json --dry-run`` uses this to print a job plan with
a wall-time ETA — calibrated from the target store's own manifest when the
run is a resume, or from any manifest passed via ``--calibrate-from``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional


@dataclass(frozen=True)
class CostModel:
    """A fitted seconds-per-cost-unit model.

    Attributes:
        ms_per_unit: Fitted milliseconds per cost unit.
        jobs: Number of (elapsed, estimate) calibration pairs used.
        total_elapsed: Total measured seconds across the pairs.
        total_cost: Total estimated cost across the pairs.
    """

    ms_per_unit: float
    jobs: int
    total_elapsed: float
    total_cost: float

    def predict_seconds(self, cost: float) -> float:
        """Predicted wall time (seconds) of work totalling ``cost`` units."""
        return cost * self.ms_per_unit / 1000.0


def fit_cost_model(manifest: Mapping) -> Optional[CostModel]:
    """Fit ms-per-cost-unit from a store manifest's job summaries.

    Only summaries carrying both a measured ``elapsed_seconds`` and a
    positive ``estimated_cost`` contribute (records of jobs whose spec is no
    longer in the scenario have no estimate and are skipped).  The fit is a
    least-squares line through the origin — ``sum(e*c) / sum(c*c)`` — which
    weights long jobs more, matching how the total wall time is dominated
    by them.

    Args:
        manifest: A manifest dictionary as written by
            :meth:`ResultsStore.write_manifest
            <repro.api.store.ResultsStore.write_manifest>`.

    Returns:
        The fitted model, or ``None`` when the manifest has no usable
        calibration pairs.
    """
    return fit_cost_model_from_pairs(
        (summary.get("elapsed_seconds"), summary.get("estimated_cost"))
        for summary in manifest.get("jobs", []))


def fit_cost_model_from_pairs(pairs: Iterable) -> Optional[CostModel]:
    """Fit ms-per-cost-unit from raw ``(elapsed_seconds, cost)`` pairs."""
    clean = []
    for elapsed, cost in pairs:
        if elapsed is None or cost is None:
            continue
        elapsed = float(elapsed)
        cost = float(cost)
        if cost <= 0.0 or elapsed < 0.0:
            continue
        clean.append((elapsed, cost))
    if not clean:
        return None
    numerator = sum(elapsed * cost for elapsed, cost in clean)
    denominator = sum(cost * cost for _, cost in clean)
    if denominator <= 0.0:
        return None
    return CostModel(
        ms_per_unit=1000.0 * numerator / denominator,
        jobs=len(clean),
        total_elapsed=sum(elapsed for elapsed, _ in clean),
        total_cost=sum(cost for _, cost in clean),
    )


def fit_cost_model_from_store(store) -> Optional[CostModel]:
    """Fit a cost model from a results store's manifest, if it has one.

    Returns ``None`` for stores without a (readable) manifest — callers
    fall back to reporting raw cost units.
    """
    from .store import StoreError

    try:
        manifest = store.manifest()
    except StoreError:
        return None
    return fit_cost_model(manifest)
