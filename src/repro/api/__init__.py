"""repro.api — the stable public facade of the evaluation pipeline.

This package is the one import surface a workload author needs:

* **Registries** (:mod:`repro.api.registry`) — ``@register_locker``,
  ``@register_attack`` and ``@register_metric`` decorators plus the
  ``make_locker``/``make_attack``/``make_metric`` lookups, so third-party
  and experimental algorithms plug into the pipeline without touching
  ``eval/``.
* **Scenarios** (:mod:`repro.api.scenario`) — the declarative
  :class:`Scenario` dataclass tree (benchmarks × lockers × attacks ×
  metrics × samples) with validated JSON round-trips, **matrix axes**
  (``seeds`` / ``key_budget_fractions`` / ``time_budgets`` sweeps) and
  deterministic expansion into :class:`JobSpec` jobs.
* **Runner** (:mod:`repro.api.runner`) — executes a scenario serially or on
  a plan-cache-aware process pool with **cost-aware largest-first
  dispatch** (:func:`schedule_chunks`), ``progress`` callbacks and
  bit-identical results either way.
* **Executor backends** (:mod:`repro.api.backends`) — the pluggable
  execution seam (``"serial"`` / ``"process"``, registry-extensible via
  :func:`register_backend`) plus the fault-tolerance primitives: per-job
  :class:`RetryPolicy` with seeded backoff, wall-clock ``job_timeout``
  enforcement with lost-worker detection, and transient-vs-permanent
  failure classification feeding the store's ``failures.jsonl``
  quarantine ledger.
* **Co-evolution** (:mod:`repro.api.coevo`) — a seeded locker-vs-attack
  search loop (:class:`CoevoLoop` / :func:`run_coevo`): locker genomes
  (algorithm, key-budget fraction, declared option genes) evolve against
  the scenario's attack roster with KPA + avalanche fitness, each
  generation expanded into ordinary jobs and run through the Runner — so
  the loop inherits resume, backends and determinism for free.
* **Fault injection** (:mod:`repro.api.faults`) — a deterministic, seeded
  :class:`FaultPlan` (crashes, hangs, transient errors, slow jobs, corrupt
  writes) that turns every recovery path above into an ordinary CI
  regression test.
* **Scenario service** (:mod:`repro.api.server` / :mod:`repro.api.client` /
  :mod:`repro.api.protocol`) — a persistent job daemon (``cli serve``):
  clients submit scenarios over a newline-delimited-JSON socket, all runs
  share one warm plan cache, progress streams back live (``watch``), and
  resubmitted scenarios dedup by fingerprint into the existing store.  The
  protocol layer is a typed ``Request``/``Response``/``Event`` envelope
  with canonical error codes and a ``determinism_class`` tag.
* **Results store** (:mod:`repro.api.store`) — one JSON record per job plus
  an aggregate manifest pairing measured wall time with the scheduler's
  cost estimates; re-runs against an existing store skip completed jobs,
  and the figure/table builders — including ``repro-lock report`` — read
  from it without re-simulating.

Minimal usage::

    from repro.api import Runner, ResultsStore, Scenario

    scenario = Scenario.from_file("scenario.json")
    report = Runner(scenario, store=ResultsStore("runs/demo"), jobs=2).run()
    print(report.average_kpa())

The registry decorators are importable *before* the heavyweight pipeline
modules load (``from repro.api import register_locker`` pulls in no
simulation or ML code), which is what lets the built-in lockers, attacks and
metrics self-register at class-definition time without import cycles.
"""

from __future__ import annotations

from .registry import (
    ATTACKS,
    LOCKERS,
    METRICS,
    Registry,
    UnknownComponentError,
    attack_names,
    locker_names,
    make_attack,
    make_locker,
    make_metric,
    metric_names,
    register_attack,
    register_locker,
    register_metric,
)

__all__ = [
    "ATTACKS",
    "LOCKERS",
    "METRICS",
    "Registry",
    "UnknownComponentError",
    "attack_names",
    "locker_names",
    "make_attack",
    "make_locker",
    "make_metric",
    "metric_names",
    "register_attack",
    "register_locker",
    "register_metric",
    # Lazily resolved (see __getattr__):
    "AttackSpec",
    "CoevoSpec",
    "JobSpec",
    "LockerSpec",
    "MetricSpec",
    "Scenario",
    "ScenarioError",
    "CoevoError",
    "CoevoLoop",
    "CoevoReport",
    "Genome",
    "run_coevo",
    "JobExecutionError",
    "Runner",
    "RunReport",
    "execute_job",
    "schedule_chunks",
    "ResultsStore",
    "StoreError",
    "CostModel",
    "fit_cost_model",
    "fit_cost_model_from_pairs",
    "fit_cost_model_from_store",
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "register_backend",
    "backend_names",
    "make_backend",
    "RetryPolicy",
    "JobOutcome",
    "TransientJobError",
    "classify_failure",
    "register_transient_error",
    "FaultPlan",
    "FaultSpec",
    "FaultPlanError",
    "InjectedTransientError",
    "InjectedCrashError",
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "OPS",
    "ProtocolError",
    "Request",
    "Response",
    "Event",
    "determinism_class",
    "ScenarioServer",
    "ServerJob",
    "JobCancelled",
    "run_server",
    "ScenarioClient",
    "ServerError",
    "parse_address",
]

#: Lazy attribute → defining submodule map (PEP 562).  The scenario/runner/
#: store modules import the component packages, which in turn import this
#: package for the registry decorators — resolving them on first access keeps
#: that cycle open.
_LAZY = {
    "AttackSpec": "scenario",
    "CoevoSpec": "scenario",
    "JobSpec": "scenario",
    "LockerSpec": "scenario",
    "MetricSpec": "scenario",
    "Scenario": "scenario",
    "ScenarioError": "scenario",
    "CoevoError": "coevo",
    "CoevoLoop": "coevo",
    "CoevoReport": "coevo",
    "Genome": "coevo",
    "run_coevo": "coevo",
    "JobExecutionError": "runner",
    "Runner": "runner",
    "RunReport": "runner",
    "execute_job": "runner",
    "schedule_chunks": "runner",
    "ResultsStore": "store",
    "StoreError": "store",
    "CostModel": "costmodel",
    "fit_cost_model": "costmodel",
    "fit_cost_model_from_pairs": "costmodel",
    "fit_cost_model_from_store": "costmodel",
    "ExecutorBackend": "backends",
    "SerialBackend": "backends",
    "ProcessPoolBackend": "backends",
    "register_backend": "backends",
    "backend_names": "backends",
    "make_backend": "backends",
    "RetryPolicy": "backends",
    "JobOutcome": "backends",
    "TransientJobError": "backends",
    "classify_failure": "backends",
    "register_transient_error": "backends",
    "FaultPlan": "faults",
    "FaultSpec": "faults",
    "FaultPlanError": "faults",
    "InjectedTransientError": "faults",
    "InjectedCrashError": "faults",
    "PROTOCOL_VERSION": "protocol",
    "ERROR_CODES": "protocol",
    "OPS": "protocol",
    "ProtocolError": "protocol",
    "Request": "protocol",
    "Response": "protocol",
    "Event": "protocol",
    "determinism_class": "protocol",
    "ScenarioServer": "server",
    "ServerJob": "server",
    "JobCancelled": "server",
    "run_server": "server",
    "ScenarioClient": "client",
    "ServerError": "client",
    "parse_address": "client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
