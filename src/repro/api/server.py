"""Persistent scenario service: submit jobs, stream progress, stay warm.

Every workload used to be one ``cli run`` process, so the process-wide plan
cache, the fitted cost model and the per-process design cache died with it —
back-to-back scenario runs paid full recompilation every time.  A
:class:`ScenarioServer` keeps one process alive across submissions: clients
connect over a newline-delimited-JSON socket (Unix domain socket by
default, TCP optional), submit scenarios, and every run executes through
the existing :class:`~repro.api.runner.Runner` / backend /
:class:`~repro.api.store.ResultsStore` stack *in this process*, so all
requests share one warm plan cache and one base-design cache.

Mechanics:

* **Typed protocol** — requests/responses/events are the envelopes of
  :mod:`repro.api.protocol`; every failure carries a canonical error code.
* **Bounded worker queue** — ``workers`` threads drain a FIFO of submitted
  jobs; submissions beyond that simply queue (``status`` reports the
  position).  Default 1 worker: runs execute strictly in submission order.
* **Dedup by fingerprint** — a resubmitted scenario (same
  :meth:`~repro.api.scenario.Scenario.fingerprint`) maps onto the existing
  job/store instead of a new run; even across server restarts the per-
  fingerprint store path makes the run a pure resume (0 jobs executed on a
  complete store).
* **Streaming progress** — the Runner's ``progress`` hook feeds per-job
  event lists that ``watch`` requests replay and then follow live.
* **Cancellation** — queued jobs cancel immediately; running jobs are
  stopped at the next job boundary by raising :class:`JobCancelled` from
  the progress hook (a ``BaseException``, so the runner's
  swallow-observer-errors contract does not apply), which leaves the store
  cleanly resumable — the runner's ``finally`` block has already committed
  every finished record and rewritten the manifest.
* **Graceful shutdown** — ``shutdown`` drains the queue or cancels
  in-flight runs; either way stores are left resumable and late requests
  get ``SHUTTING_DOWN``.

The server itself is transport + bookkeeping only (~no simulation logic):
everything it runs is the same library code ``cli run`` uses, which is what
makes server-side stores bit-identical to local ones.
"""

from __future__ import annotations

import json
import logging
import os
import queue
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .protocol import (PROTOCOL_VERSION, Event, ProtocolError, Request,
                       Response, decode_request, determinism_class, encode)
from .scenario import Scenario, ScenarioError
from .store import ResultsStore, StoreError

_log = logging.getLogger(__name__)

#: Job lifecycle states (terminal: done/failed/cancelled).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class JobCancelled(BaseException):
    """Raised inside a running job's progress hook to stop it.

    Deliberately a ``BaseException``: the runner's progress-hook contract
    swallows ``Exception`` (an observer must not abort a run), and
    cancellation is precisely the case that *must* abort it.  The runner's
    ``finally`` block still runs, so every record committed before the
    cancel survives and the store resumes cleanly.
    """


@dataclass
class ServerJob:
    """Bookkeeping of one submitted scenario run."""

    job_id: str
    scenario: Scenario
    fingerprint: str
    store_path: Path
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done: int = 0
    total: int = 0
    executed: int = 0
    skipped: int = 0
    quarantined: int = 0
    failures: int = 0
    error: Optional[str] = None
    events: List[Dict] = field(default_factory=list)
    cond: threading.Condition = field(default_factory=threading.Condition)
    cancel_requested: bool = False

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.state in ("done", "failed", "cancelled")

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary served by ``status``/``list``/``submit``."""
        return {
            "job_id": self.job_id,
            "scenario": self.scenario.name,
            "fingerprint": self.fingerprint,
            "store": str(self.store_path),
            "state": self.state,
            "determinism_class": determinism_class(self.scenario),
            "done": self.done,
            "total": self.total,
            "executed": self.executed,
            "skipped": self.skipped,
            "quarantined": self.quarantined,
            "failures": self.failures,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def push_event(self, data: Dict[str, object]) -> None:
        """Append one progress event and wake every watcher."""
        with self.cond:
            self.events.append(data)
            self.cond.notify_all()

    def transition(self, state: str, **updates) -> None:
        """Move to ``state`` (waking watchers so streams can finish)."""
        with self.cond:
            self.state = state
            for name, value in updates.items():
                setattr(self, name, value)
            self.cond.notify_all()


def _plan_cache_stats() -> Dict[str, int]:
    """Snapshot of the process-wide plan cache (the warm-cache gate data)."""
    from ..sim import plan_cache_info

    info = plan_cache_info()
    return {"hits": info.hits, "misses": info.misses, "size": info.size,
            "maxsize": info.maxsize}


class ScenarioServer:
    """A persistent scenario-service daemon.

    Args:
        runs_root: Directory where per-scenario stores live; a submitted
            scenario without an explicit ``store`` param gets
            ``<runs_root>/<name>-<fingerprint>`` — the fingerprint in the
            path is what makes resubmission (even across server restarts)
            a pure resume.
        socket_path: Unix-domain-socket path to listen on (the default
            transport; ``<runs_root>/server.sock`` when neither transport
            is given).
        host / port: TCP transport instead of the Unix socket.
        workers: Concurrent scenario runs (worker threads over the job
            queue).  All of them share this process's plan cache.
        run_jobs: Worker *processes* each run may use (the Runner's
            ``jobs`` argument).  Default 1: serial in-process execution,
            which keeps every simulation inside the warm-cache process.

    Raises:
        ValueError: for a non-positive ``workers``/``run_jobs`` or both
            transports configured at once.
    """

    def __init__(self, runs_root: Path, socket_path: Optional[Path] = None,
                 host: Optional[str] = None, port: Optional[int] = None,
                 workers: int = 1, run_jobs: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if run_jobs < 1:
            raise ValueError("run_jobs must be positive")
        if socket_path is not None and host is not None:
            raise ValueError("configure either socket_path or host/port, "
                             "not both")
        if (host is None) != (port is None):
            raise ValueError("TCP transport needs both host and port")
        self.runs_root = Path(runs_root)
        self.socket_path = (Path(socket_path) if socket_path is not None
                            else None if host is not None
                            else self.runs_root / "server.sock")
        self.host = host
        self.port = port
        self.workers = workers
        self.run_jobs = run_jobs
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._jobs: Dict[str, ServerJob] = {}
        self._by_fingerprint: Dict[Tuple[str, str], str] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._sequence = 0
        self._shutting_down = False
        self._shutdown_mode: Optional[str] = None
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------- lifecycle

    @property
    def address(self) -> str:
        """The address clients connect to (``cli submit --socket ...``)."""
        if self.host is not None:
            return f"tcp:{self.host}:{self.port}"
        return str(self.socket_path)

    def start(self) -> None:
        """Bind the listener and start the accept + worker threads."""
        self.runs_root.mkdir(parents=True, exist_ok=True)
        if self.host is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            # An OS-assigned port (port=0) is resolved at bind time.
            self.port = listener.getsockname()[1]
        else:
            assert self.socket_path is not None
            if self.socket_path.exists():
                # A dead server's socket file would make bind() fail even
                # though nobody is listening; a live server holds the
                # listener open, so connect() distinguishes the two.
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    probe.connect(str(self.socket_path))
                except OSError:
                    self.socket_path.unlink()
                else:
                    probe.close()
                    raise OSError(
                        f"another server is already listening on "
                        f"{self.socket_path}")
                finally:
                    probe.close()
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(self.socket_path))
        listener.listen()
        self._listener = listener
        accept = threading.Thread(target=self._accept_loop,
                                  name="scenario-server-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        for number in range(self.workers):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"scenario-worker-{number}",
                                      daemon=True)
            worker.start()
            self._threads.append(worker)
        _log.info("scenario server listening on %s (%d worker(s))",
                  self.address, self.workers)

    def serve_forever(self) -> None:
        """Block until the server is stopped (shutdown op or :meth:`stop`)."""
        self._stop.wait()
        self._join_workers()

    def stop(self, mode: str = "cancel") -> None:
        """Stop the server from the owning thread (signal handlers, tests).

        ``mode="drain"`` lets queued and running jobs finish first;
        ``mode="cancel"`` (the default — what SIGTERM wants) cancels them
        at the next job boundary.  Either way every store is left
        resumable.
        """
        self._initiate_shutdown(mode)
        self._join_workers()

    def _join_workers(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._listener = None
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=30.0)
        self._threads = []
        if self.socket_path is not None and self.socket_path.exists():
            try:
                self.socket_path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _initiate_shutdown(self, mode: str) -> None:
        if mode not in ("drain", "cancel"):
            raise ValueError(f"unknown shutdown mode {mode!r}; "
                             "use 'drain' or 'cancel'")
        with self._lock:
            if self._shutting_down:
                return
            self._shutting_down = True
            self._shutdown_mode = mode
            jobs = list(self._jobs.values())
        if mode == "cancel":
            for job in jobs:
                self._cancel_job(job)
        # One sentinel per worker: drain mode's workers finish the real
        # queue first, cancel mode's workers skip the cancelled entries.
        for _ in range(self.workers):
            self._queue.put(None)
        self._stop.set()

    # ----------------------------------------------------------- accept loop

    def _accept_loop(self) -> None:
        # The accept timeout is the shutdown poll: closing a listening
        # socket does not reliably wake a thread already blocked in
        # accept(), so the loop re-checks the stop flag between attempts.
        assert self._listener is not None
        self._listener.settimeout(0.2)
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed: shutdown
            connection.settimeout(None)
            thread = threading.Thread(target=self._serve_connection,
                                      args=(connection,), daemon=True)
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        """Handle one client connection: a loop of NDJSON requests."""
        reader = connection.makefile("rb")
        try:
            for line in reader:
                if not line.strip():
                    continue
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    self._send(connection,
                               Response.failure("-", exc.code, exc.message))
                    continue
                try:
                    if request.op == "watch":
                        self._handle_watch(connection, request)
                    else:
                        result = self._dispatch(request)
                        self._send(connection,
                                   Response.success(request.id, result))
                except ProtocolError as exc:
                    self._send(connection, Response.failure(
                        request.id, exc.code, exc.message))
                except Exception:
                    _log.exception("internal error handling %r", request.op)
                    self._send(connection, Response.failure(
                        request.id, "INTERNAL",
                        traceback.format_exc(limit=5)))
        except (OSError, ValueError):
            pass  # client went away mid-request
        finally:
            try:
                reader.close()
                connection.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _send(self, connection: socket.socket, message) -> None:
        connection.sendall(encode(message))

    # ------------------------------------------------------------ dispatching

    def _dispatch(self, request: Request) -> Dict[str, object]:
        handler = {
            "ping": self._op_ping,
            "submit": self._op_submit,
            "status": self._op_status,
            "cancel": self._op_cancel,
            "report": self._op_report,
            "list": self._op_list,
            "shutdown": self._op_shutdown,
        }.get(request.op)
        if handler is None:
            from .protocol import OPS

            raise ProtocolError("UNKNOWN_OP",
                                f"unknown op {request.op!r}; supported: "
                                f"{', '.join(OPS)}")
        return handler(request.params)

    def _get_job(self, params: Dict) -> ServerJob:
        job_id = params.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ProtocolError("INVALID_REQUEST",
                                "params need a non-empty string 'job_id'")
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            with self._lock:
                known = sorted(self._jobs)
            raise ProtocolError(
                "UNKNOWN_JOB",
                f"no job {job_id!r} on this server; known jobs: "
                f"{', '.join(known) if known else '(none)'}")
        return job

    # -------------------------------------------------------------------- ops

    def _op_ping(self, params: Dict) -> Dict[str, object]:
        with self._lock:
            states: Dict[str, int] = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            shutting_down = self._shutting_down
        from .backends import backend_names

        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "address": self.address,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "runs_root": str(self.runs_root),
            "workers": self.workers,
            "jobs": states,
            "plan_cache": _plan_cache_stats(),
            "backends": backend_names(),
            "shutting_down": shutting_down,
        }

    def _op_submit(self, params: Dict) -> Dict[str, object]:
        with self._lock:
            if self._shutting_down:
                raise ProtocolError("SHUTTING_DOWN",
                                    "server is shutting down and accepts "
                                    "no new scenarios")
        data = params.get("scenario")
        if not isinstance(data, dict):
            raise ProtocolError("INVALID_REQUEST",
                                "params need a 'scenario' object "
                                "(the Scenario JSON form)")
        backend = data.get("backend")
        if backend is not None:
            from .backends import backend_names

            if backend not in backend_names():
                raise ProtocolError(
                    "BACKEND_UNAVAILABLE",
                    f"unknown executor backend {backend!r}; registered: "
                    f"{', '.join(backend_names())}")
        try:
            scenario = Scenario.from_dict(data)
        except ScenarioError as exc:
            # The canonical code for clients, the exact validation message
            # for humans — never a bare "invalid scenario".
            raise ProtocolError("INVALID_SCENARIO", str(exc)) from exc
        fingerprint = scenario.fingerprint()
        store_param = params.get("store")
        if store_param is not None and not isinstance(store_param, str):
            raise ProtocolError("INVALID_REQUEST",
                                "params 'store' must be a string path")
        store_path = (Path(store_param) if store_param is not None
                      else self.runs_root / f"{scenario.name}-{fingerprint}")
        with self._lock:
            dedup_key = (fingerprint, str(store_path))
            existing_id = self._by_fingerprint.get(dedup_key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if not existing.terminal or existing.state == "done":
                    # Same scenario, same store: the existing run (finished
                    # or still going) already is the answer.
                    result = existing.describe()
                    result["deduplicated"] = True
                    return result
            self._sequence += 1
            job = ServerJob(job_id=f"job-{self._sequence:04d}",
                            scenario=scenario, fingerprint=fingerprint,
                            store_path=store_path)
            job.total = len(scenario.expand())
            self._jobs[job.job_id] = job
            self._by_fingerprint[dedup_key] = job.job_id
            position = self._queue.qsize()
        self._queue.put(job.job_id)
        result = job.describe()
        result["deduplicated"] = False
        result["position"] = position
        return result

    def _op_status(self, params: Dict) -> Dict[str, object]:
        job = self._get_job(params)
        result = job.describe()
        result["plan_cache"] = _plan_cache_stats()
        return result

    def _op_cancel(self, params: Dict) -> Dict[str, object]:
        job = self._get_job(params)
        changed = self._cancel_job(job)
        result = job.describe()
        result["changed"] = changed
        return result

    def _op_report(self, params: Dict) -> Dict[str, object]:
        store_param = params.get("store")
        if store_param is not None:
            if not isinstance(store_param, str):
                raise ProtocolError("INVALID_REQUEST",
                                    "params 'store' must be a string path")
            store_path = Path(store_param)
        else:
            store_path = self._get_job(params).store_path
        from ..eval import store_report, store_report_json
        from ..eval.reporting import store_context

        store = ResultsStore(store_path)
        if not store.root.exists():
            raise ProtocolError("STORE_ERROR",
                                f"results store {store.root} does not exist")
        try:
            context = store_context(store)
            return {
                "store": str(store.root),
                "report": store_report(store, context=context),
                "data": store_report_json(store, context=context),
            }
        except StoreError as exc:
            raise ProtocolError("STORE_ERROR", str(exc)) from exc

    def _op_list(self, params: Dict) -> Dict[str, object]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda job: job.job_id)
        return {"jobs": [job.describe() for job in jobs]}

    def _op_shutdown(self, params: Dict) -> Dict[str, object]:
        mode = params.get("mode", "drain")
        if mode not in ("drain", "cancel"):
            raise ProtocolError("INVALID_REQUEST",
                                f"unknown shutdown mode {mode!r}; "
                                "use 'drain' or 'cancel'")
        with self._lock:
            outstanding = sum(1 for job in self._jobs.values()
                              if not job.terminal)
        # Respond first, then stop: the short timer lets the success
        # response reach the socket before the listener goes away.
        timer = threading.Timer(0.1, self._initiate_shutdown, args=(mode,))
        timer.daemon = True
        timer.start()
        return {"shutting_down": True, "mode": mode,
                "outstanding_jobs": outstanding}

    # ------------------------------------------------------------------ watch

    def _handle_watch(self, connection: socket.socket,
                      request: Request) -> None:
        """Stream a job's progress events, then the final state.

        Events are replayed from the beginning — a watcher attaching late
        (or to a finished job) still sees the whole history — and then
        followed live until the job reaches a terminal state.
        """
        job = self._get_job(request.params)
        cursor = 0
        while True:
            with job.cond:
                while cursor >= len(job.events) and not job.terminal:
                    job.cond.wait(timeout=1.0)
                fresh = job.events[cursor:]
                cursor += len(fresh)
                terminal = job.terminal and cursor >= len(job.events)
            for data in fresh:
                self._send(connection,
                           Event(id=request.id, event="progress", data=data))
            if terminal:
                self._send(connection,
                           Response.success(request.id, job.describe()))
                return

    # ------------------------------------------------------------ cancelling

    def _cancel_job(self, job: ServerJob) -> bool:
        """Request cancellation; True when the job's fate changed."""
        with job.cond:
            if job.terminal:
                return False
            job.cancel_requested = True
            if job.state == "queued":
                # The queue entry stays; the worker skips cancelled jobs.
                job.state = "cancelled"
                job.finished_at = time.time()
                job.cond.notify_all()
                return True
        return True  # running: the progress hook raises at the next job

    # ----------------------------------------------------------- worker loop

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return  # shutdown sentinel
            with self._lock:
                job = self._jobs[job_id]
            with job.cond:
                if job.state != "queued":
                    continue  # cancelled while queued
                job.state = "running"
                job.started_at = time.time()
            try:
                self._run_job(job)
            except JobCancelled:
                job.transition("cancelled", finished_at=time.time())
                _log.info("job %s cancelled (store %s stays resumable)",
                          job.job_id, job.store_path)
            except Exception:
                job.transition("failed", finished_at=time.time(),
                               error=traceback.format_exc())
                _log.exception("job %s failed", job.job_id)

    def _run_job(self, job: ServerJob) -> None:
        """Execute one submitted scenario through the library runner."""
        from .runner import Runner

        def progress(done: int, total: int, record: Dict) -> None:
            with job.cond:
                job.done, job.total = done, total
            job.push_event({
                "job_id": record.get("job_id"),
                "kind": record.get("kind"),
                "done": done,
                "total": total,
                "elapsed_seconds": record.get("elapsed_seconds"),
            })
            if job.cancel_requested:
                raise JobCancelled(job.job_id)

        report = Runner(job.scenario, store=ResultsStore(job.store_path),
                        jobs=self.run_jobs, progress=progress).run()
        job.transition("done", finished_at=time.time(),
                       done=report.skipped + report.executed,
                       total=report.total, executed=report.executed,
                       skipped=report.skipped,
                       quarantined=report.quarantined,
                       failures=len(report.failures))


def run_server(runs_root: Path, socket_path: Optional[Path] = None,
               host: Optional[str] = None, port: Optional[int] = None,
               workers: int = 1, run_jobs: int = 1,
               ready: Optional[Path] = None) -> int:
    """Start a server and block until it is shut down (the ``cli serve`` body).

    Installs SIGTERM/SIGINT handlers that cancel in-flight runs at the next
    job boundary — a killed daemon leaves every store resumable.  ``ready``
    names a file written (with the server address) once the listener is
    bound, so scripts can wait for startup without polling the socket.
    """
    import signal

    server = ScenarioServer(runs_root=runs_root, socket_path=socket_path,
                            host=host, port=port, workers=workers,
                            run_jobs=run_jobs)
    server.start()
    if ready is not None:
        ready.parent.mkdir(parents=True, exist_ok=True)
        ready.write_text(json.dumps({"address": server.address,
                                     "pid": os.getpid()}) + "\n")

    def _graceful(signum, frame):
        _log.info("signal %s: shutting down (cancelling in-flight runs)",
                  signum)
        server._initiate_shutdown("cancel")

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _graceful)
    try:
        server.serve_forever()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0
