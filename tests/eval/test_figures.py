"""Unit tests for the figure data builders."""

import numpy as np
import pytest

from repro.eval.figures import (
    PAPER_AVERAGE_KPA,
    ObservationPool,
    TrajectoryData,
    figure4_observation_analysis,
    figure5_design,
    figure5_surface,
    figure5_trajectories,
)


class TestFigure4:
    @pytest.fixture(scope="class")
    def pools(self):
        return figure4_observation_analysis(n_operations=48, training_rounds=8,
                                            seed=0)

    def test_all_scenarios_present(self, pools):
        assert set(pools) == {"serial", "random", "random-no-overlap"}

    def test_serial_observations_are_contradictory(self, pools):
        serial = pools["serial"]
        # Fig. 4e: '+' and '-' are (nearly) equally related to both key values.
        assert serial.contradiction_ratio() > 0.5
        assert 0.35 <= serial.real_operator_bias("+") <= 0.65
        # The induced rule gives the attacker no reliable advantage.
        assert serial.inferred_accuracy <= 0.75

    def test_random_selection_leaks_partially(self, pools):
        random_pool = pools["random"]
        # Fig. 4f: '+' is *more likely* to be the real operation.
        assert random_pool.real_operator_bias("+") > 0.55
        assert 0.0 < random_pool.overlap_fraction < 1.0

    def test_no_overlap_leaks_fully(self, pools):
        clean = pools["random-no-overlap"]
        # Fig. 4g: every observation names '+' as the correct operation and
        # the attacker can infer the key.
        assert clean.real_operator_bias("+") == pytest.approx(1.0)
        assert clean.contradiction_ratio() == pytest.approx(0.0)
        assert clean.overlap_fraction == pytest.approx(0.0)
        assert clean.inferred_accuracy > 0.9

    def test_leakage_ordering_matches_paper(self, pools):
        assert pools["random-no-overlap"].real_operator_bias("+") >= \
            pools["random"].real_operator_bias("+") >= \
            pools["serial"].real_operator_bias("+") - 0.1

    def test_empty_pool_defaults(self):
        pool = ObservationPool("empty")
        assert pool.contradiction_ratio() == 0.0
        assert pool.real_operator_bias("+") == 0.0


class TestFigure5:
    def test_design_has_requested_imbalances(self):
        design = figure5_design(25, 10)
        census = design.operation_census()
        assert census == {"+": 25, "<<": 10}

    def test_surface_matches_paper_example(self):
        surface = figure5_surface(25, 10)
        assert surface.shape == (26, 11)
        assert surface[0, 0] == 0.0
        assert surface[-1, -1] == 100.0

    def test_trajectories_shape(self):
        trajectories = figure5_trajectories(10, 4, seed=0)
        assert set(trajectories) == {"era", "hra", "greedy"}
        for data in trajectories.values():
            assert isinstance(data, TrajectoryData)
            assert len(data.key_bits) == len(data.global_metric)
            assert data.global_metric == sorted(data.global_metric)

    def test_era_and_greedy_reach_full_security(self):
        trajectories = figure5_trajectories(10, 4, seed=1)
        assert trajectories["era"].global_metric[-1] == pytest.approx(100.0)
        assert trajectories["greedy"].global_metric[-1] == pytest.approx(100.0)
        assert trajectories["greedy"].bits_to_full_security is not None

    def test_greedy_cheaper_or_equal_to_hra(self):
        trajectories = figure5_trajectories(10, 4, seed=2)
        greedy_bits = trajectories["greedy"].bits_to_full_security
        hra_bits = trajectories["hra"].bits_to_full_security
        assert greedy_bits is not None
        if hra_bits is not None:
            assert greedy_bits <= hra_bits

    def test_era_restricted_metric_always_100(self):
        trajectories = figure5_trajectories(8, 3, seed=3)
        for value in trajectories["era"].restricted_metric:
            assert value == pytest.approx(100.0)


class TestPaperReference:
    def test_paper_average_values_recorded(self):
        assert PAPER_AVERAGE_KPA["assure"] == pytest.approx(74.78)
        assert PAPER_AVERAGE_KPA["hra"] == pytest.approx(74.26)
        assert PAPER_AVERAGE_KPA["era"] == pytest.approx(47.92)
