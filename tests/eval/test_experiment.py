"""Unit tests for the evaluation experiment pipeline."""

import random

import pytest

from repro.eval.experiment import (
    CellResult,
    ExperimentConfig,
    ExperimentResult,
    SnapShotExperiment,
    make_locker,
)
from repro.locking import AssureLocker, ERALocker, GreedyLocker, HRALocker


class TestMakeLocker:
    def test_known_algorithms(self):
        rng = random.Random(0)
        assert isinstance(make_locker("assure", rng), AssureLocker)
        assert make_locker("assure", rng).selection == "serial"
        assert make_locker("assure-random", rng).selection == "random"
        assert isinstance(make_locker("hra", rng), HRALocker)
        assert isinstance(make_locker("greedy", rng), GreedyLocker)
        assert isinstance(make_locker("era", rng), ERALocker)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            make_locker("magic", random.Random(0))


class TestBudgets:
    def test_budget_is_75_percent_by_default(self):
        config = ExperimentConfig(scale=0.1, seed=0)
        experiment = SnapShotExperiment(config)
        design = experiment.load_design("MD5")
        budget = experiment.key_budget_for(design, "MD5", "assure")
        assert budget == int(round(0.75 * design.num_operations()))

    def test_n2046_era_uses_full_budget(self):
        config = ExperimentConfig(scale=0.02, seed=0)
        experiment = SnapShotExperiment(config)
        design = experiment.load_design("N_2046")
        assert experiment.key_budget_for(design, "N_2046", "era") == \
            design.num_operations()
        assert experiment.key_budget_for(design, "N_2046", "assure") == \
            int(round(0.75 * design.num_operations()))


class TestRunCell:
    @pytest.fixture
    def quick_config(self):
        return ExperimentConfig(
            benchmarks=["SASC"],
            algorithms=("assure", "era"),
            scale=0.15,
            n_test_lockings=2,
            relock_rounds=6,
            automl_time_budget=1.0,
            seed=3,
        )

    def test_cell_result_shape(self, quick_config):
        experiment = SnapShotExperiment(quick_config)
        design = experiment.load_design("SASC")
        cell = experiment.run_cell(design, "SASC", "assure")
        assert cell.benchmark == "SASC"
        assert cell.algorithm == "assure"
        assert len(cell.attacks) == 2
        assert 0.0 <= cell.mean_kpa <= 100.0
        assert cell.key_budget >= 1

    def test_empty_cell_mean_raises(self):
        with pytest.raises(ValueError):
            CellResult("X", "assure").mean_kpa

    def test_full_run_and_aggregations(self, quick_config):
        result = SnapShotExperiment(quick_config).run()
        assert isinstance(result, ExperimentResult)
        assert len(result.cells) == 2  # 1 benchmark x 2 algorithms

        table = result.kpa_table()
        assert set(table) == {"SASC"}
        assert set(table["SASC"]) == {"assure", "era"}

        average = result.average_kpa()
        assert set(average) == {"assure", "era"}

        samples = result.kpa_samples()
        assert len(samples) == 4  # 2 algorithms x 2 lockings
        by_benchmark = result.aggregate_by_benchmark()
        assert by_benchmark["SASC"].count == 4

    def test_run_is_reproducible_with_same_seed(self, quick_config):
        first = SnapShotExperiment(quick_config).run().kpa_table()
        second = SnapShotExperiment(quick_config).run().kpa_table()
        assert first == second


class TestFunctionalValidation:
    def test_functional_vectors_flow_into_results(self):
        config = ExperimentConfig(
            benchmarks=["SASC"],
            algorithms=("assure",),
            scale=0.15,
            n_test_lockings=1,
            relock_rounds=4,
            automl_time_budget=0.5,
            functional_vectors=16,
            seed=5,
        )
        result = SnapShotExperiment(config).run()
        (cell,) = result.cells
        (attack,) = cell.attacks
        assert attack.functional_kpa is not None
        assert 0.0 <= attack.functional_kpa <= 100.0
        (sample,) = result.kpa_samples()
        assert sample.metadata["functional_kpa"] == attack.functional_kpa

    def test_functional_validation_off_by_default(self):
        config = ExperimentConfig(
            benchmarks=["SASC"],
            algorithms=("assure",),
            scale=0.15,
            n_test_lockings=1,
            relock_rounds=4,
            automl_time_budget=0.5,
            seed=5,
        )
        result = SnapShotExperiment(config).run()
        (attack,) = result.cells[0].attacks
        assert attack.functional_kpa is None
        (sample,) = result.kpa_samples()
        assert "functional_kpa" not in sample.metadata
