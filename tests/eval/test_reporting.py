"""Unit tests for the experiment report and shape checks."""

from repro.eval.experiment import ExperimentConfig, SnapShotExperiment
from repro.eval.reporting import ShapeCheck, experiment_report, shape_checks


class TestShapeChecks:
    def test_paper_like_numbers_pass_all_checks(self):
        average = {"assure": 74.8, "hra": 74.3, "era": 47.9}
        per_benchmark = {
            "N_1023": {"assure": 52.0, "hra": 49.0, "era": 50.0},
            "N_2046": {"assure": 99.0, "hra": 97.0, "era": 51.0},
        }
        checks = shape_checks(average, per_benchmark)
        assert checks["era_random"].holds
        assert checks["assure_above_era"].holds
        assert checks["hra_above_era"].holds
        assert checks["assure_hra_similar"].holds
        assert checks["n1023_balanced"].holds
        assert checks["n2046_worst_case"].holds

    def test_broken_scheme_fails_checks(self):
        average = {"assure": 52.0, "hra": 51.0, "era": 90.0}
        checks = shape_checks(average)
        assert not checks["era_random"].holds
        assert not checks["assure_above_era"].holds

    def test_missing_algorithms_produce_partial_checks(self):
        checks = shape_checks({"era": 49.0})
        assert "era_random" in checks
        assert "assure_above_era" not in checks

    def test_shape_check_text(self):
        check = ShapeCheck("claim", True, "detail")
        assert "OK" in check.to_text()
        assert "claim" in check.to_text()
        failing = ShapeCheck("claim", False, "detail")
        assert "FAIL" in failing.to_text()


class TestExperimentReport:
    def test_report_contains_tables_and_checks(self):
        config = ExperimentConfig(
            benchmarks=["SASC"],
            algorithms=("assure", "era"),
            scale=0.15,
            n_test_lockings=1,
            relock_rounds=5,
            automl_time_budget=1.0,
            seed=7,
        )
        result = SnapShotExperiment(config).run()
        report = experiment_report(result)
        assert "Fig. 6a" in report
        assert "Fig. 6b" in report
        assert "Shape checks" in report
        assert "SASC" in report
