"""Per-(benchmark, axis) sweep aggregation and seed-axis confidence intervals."""

import math

import pytest

from repro.eval import (
    AxisSweepData,
    axis_sweep_table_text,
    axis_sweeps_from_records,
)


def _attack_record(benchmark, locker, kpa, axes):
    return {"kind": "attack", "benchmark": benchmark, "locker": locker,
            "result": {"kpa": kpa}, "axes": axes}


RECORDS = [
    # key-budget axis swept over two seeds on two benchmarks
    _attack_record("SASC", "era", 50.0, {"key_budget_fraction": 0.25,
                                         "seed": 1}),
    _attack_record("SASC", "era", 60.0, {"key_budget_fraction": 0.25,
                                         "seed": 2}),
    _attack_record("SASC", "era", 70.0, {"key_budget_fraction": 0.75,
                                         "seed": 1}),
    _attack_record("SASC", "era", 80.0, {"key_budget_fraction": 0.75,
                                         "seed": 2}),
    _attack_record("MD5", "era", 90.0, {"key_budget_fraction": 0.25,
                                        "seed": 1}),
    _attack_record("MD5", "era", 90.0, {"key_budget_fraction": 0.25,
                                        "seed": 2}),
    # a metric record never contributes
    {"kind": "metric", "benchmark": "SASC", "locker": "era",
     "metric": "avalanche", "axes": {"seed": 1}, "result": {"mean": 0.1}},
]


class TestAggregate:
    def test_aggregate_means_span_benchmarks(self):
        sweeps = {s.axis: s for s in axis_sweeps_from_records(RECORDS)}
        kb = sweeps["key_budget_fraction"]
        assert kb.benchmark is None
        assert kb.values == [0.25, 0.75]
        # 0.25 cell averages SASC (50, 60) and MD5 (90, 90)
        assert kb.kpa[0.25]["era"] == pytest.approx(72.5)
        assert kb.counts[0.25]["era"] == 4

    def test_axis_order_is_canonical(self):
        axes = [s.axis for s in axis_sweeps_from_records(RECORDS)]
        assert axes == ["seed", "key_budget_fraction"]

    def test_ci_half_width_matches_hand_computation(self):
        sweeps = {s.axis: s for s in axis_sweeps_from_records(RECORDS)}
        kb = sweeps["key_budget_fraction"]
        values = [50.0, 60.0, 90.0, 90.0]
        mean = sum(values) / 4
        var = sum((v - mean) ** 2 for v in values) / 3  # ddof=1
        expected = 1.96 * math.sqrt(var) / math.sqrt(4)
        assert kb.kpa_ci[0.25]["era"] == pytest.approx(expected)

    def test_single_record_cells_have_zero_ci(self):
        records = [_attack_record("SASC", "era", 55.0, {"seed": 7})]
        (sweep,) = axis_sweeps_from_records(records)
        assert sweep.kpa_ci[7]["era"] == 0.0


class TestPerBenchmark:
    def test_per_benchmark_grouping(self):
        sweeps = axis_sweeps_from_records(RECORDS, per_benchmark=True)
        keys = [(s.benchmark, s.axis) for s in sweeps]
        assert keys == [("MD5", "seed"), ("MD5", "key_budget_fraction"),
                        ("SASC", "seed"), ("SASC", "key_budget_fraction")]
        sasc_kb = next(s for s in sweeps
                       if s.benchmark == "SASC"
                       and s.axis == "key_budget_fraction")
        assert sasc_kb.kpa[0.25]["era"] == pytest.approx(55.0)
        assert sasc_kb.counts[0.75]["era"] == 2

    def test_benchmark_scoped_table_title(self):
        sweeps = axis_sweeps_from_records(RECORDS, per_benchmark=True)
        sasc_kb = next(s for s in sweeps if s.benchmark == "SASC"
                       and s.axis == "key_budget_fraction")
        text = axis_sweep_table_text(sasc_kb)
        assert "SASC, scenario matrix axis" in text

    def test_multi_record_cells_render_with_ci(self):
        sweeps = {s.axis: s for s in axis_sweeps_from_records(RECORDS)}
        text = axis_sweep_table_text(sweeps["key_budget_fraction"])
        assert "±" in text

    def test_legacy_positional_construction_still_works(self):
        sweep = AxisSweepData("seed", [1], {1: {"era": 50.0}},
                              {1: {"era": 1}})
        assert "50.00" in axis_sweep_table_text(sweep)
