"""Unit tests for the plain-text table rendering."""

from repro.eval.figures import figure4_observation_analysis, figure5_trajectories
from repro.eval.tables import (
    average_kpa_text,
    format_table,
    kpa_table_text,
    observation_table_text,
    trajectory_table_text,
)


class TestFormatTable:
    def test_alignment_and_float_formatting(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bbbb", 7]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.23" in text
        # Column separator positions line up across rows.
        positions = {line.index("|") for line in lines[1:] if "|" in line}
        assert len(positions) == 1

    def test_without_title(self):
        text = format_table(["x"], [[1]])
        assert text.splitlines()[0].strip() == "x"


class TestDomainTables:
    def test_kpa_table_text(self):
        table = {"MD5": {"assure": 80.0, "hra": 75.0, "era": 50.0},
                 "FIR": {"assure": 70.0, "hra": 68.0, "era": 48.0}}
        text = kpa_table_text(table)
        assert "Fig. 6a" in text
        assert "MD5" in text and "FIR" in text
        assert "80.00" in text

    def test_average_kpa_text_with_paper_reference(self):
        text = average_kpa_text({"assure": 72.0, "era": 49.0},
                                paper={"assure": 74.78, "era": 47.92})
        assert "paper" in text
        assert "74.78" in text

    def test_average_kpa_text_without_reference(self):
        text = average_kpa_text({"assure": 72.0})
        assert "paper" not in text

    def test_observation_table_text(self):
        pools = figure4_observation_analysis(n_operations=16, training_rounds=3,
                                             seed=0)
        text = observation_table_text(pools)
        assert "serial" in text
        assert "random-no-overlap" in text
        assert "contradiction ratio" in text

    def test_trajectory_table_text(self):
        trajectories = figure5_trajectories(6, 3, seed=0)
        text = trajectory_table_text(trajectories)
        assert "era" in text and "greedy" in text
        assert "bits to M_g_sec=100" in text
