"""Unit tests for ERA (Exact ML-Resilient Algorithm)."""

import random

import pytest

from repro.bench import alternating_network, plus_network
from repro.locking import ERALocker, global_metric, odt_from_design, restricted_metric


def affected_pairs_balanced(design):
    """Check Definition 1 on a locked design: every affected pair is balanced."""
    odt = odt_from_design(design)
    affected_ops = set()
    for bit in design.key_bits:
        if bit.kind == "operation":
            affected_ops.add(bit.real_op)
            affected_ops.add(bit.dummy_op)
    for first, second in odt.pairs():
        if first in affected_ops or second in affected_ops:
            if odt.value(first) != 0:
                return False
    return True


class TestSecurityGuarantee:
    def test_affected_pairs_balanced_on_mixer(self, mixer_design, rng):
        result = ERALocker(rng=rng).lock(mixer_design, key_budget=6)
        assert affected_pairs_balanced(result.design)
        assert result.tracker.final_restricted == pytest.approx(100.0)

    def test_affected_pairs_balanced_on_imbalanced_network(self, rng):
        design = plus_network(24, name="plus24")
        budget = int(0.75 * 24)
        result = ERALocker(rng=rng).lock(design, key_budget=budget)
        assert affected_pairs_balanced(result.design)
        # For a pure +-network the whole design must end up balanced.
        odt = odt_from_design(result.design)
        assert odt.value("+") == 0

    def test_guarantee_holds_for_many_seeds(self, mixer_design):
        for seed in range(8):
            result = ERALocker(rng=random.Random(seed)).lock(mixer_design, 5)
            assert affected_pairs_balanced(result.design), f"seed {seed}"

    def test_restricted_100_after_every_round(self, mixer_design, rng):
        result = ERALocker(rng=rng).lock(mixer_design, key_budget=8)
        assert result.tracker is not None
        for point in result.tracker.points:
            assert point.restricted_value == pytest.approx(100.0)


class TestBudgetBehaviour:
    def test_can_exceed_budget(self, rng):
        # A fully imbalanced design forces ERA beyond a small budget: once it
        # picks the (+,-) pair it must balance it completely.
        design = plus_network(20, name="plus20")
        result = ERALocker(rng=rng).lock(design, key_budget=5)
        assert result.bits_used >= 5
        assert result.bits_used <= 20
        odt = odt_from_design(result.design)
        assert odt.value("+") == 0

    def test_balanced_design_uses_pairwise_steps(self, rng):
        design = alternating_network(6, name="balanced12")
        result = ERALocker(rng=rng).lock(design, key_budget=6)
        # Balanced pairs are locked two bits at a time and stay balanced.
        assert result.bits_used >= 6
        assert odt_from_design(result.design).value("+") == 0

    def test_zero_budget(self, mixer_design, rng):
        result = ERALocker(rng=rng).lock(mixer_design, key_budget=0)
        assert result.bits_used == 0

    def test_negative_budget_rejected(self, mixer_design, rng):
        with pytest.raises(ValueError):
            ERALocker(rng=rng).lock(mixer_design, key_budget=-3)

    def test_input_not_mutated(self, mixer_design, rng):
        before = mixer_design.to_verilog()
        ERALocker(rng=rng).lock(mixer_design, key_budget=4)
        assert mixer_design.to_verilog() == before

    def test_statistics_and_naming(self, mixer_design, rng):
        result = ERALocker(rng=rng).lock(mixer_design, key_budget=4)
        assert result.algorithm == "era"
        assert result.statistics["rounds"] >= 1
