"""Avalanche sensitivity: single-bit input flips via run_sweep bindings."""

import random

import pytest

import repro.sim
from repro.locking import AssureLocker, avalanche_sensitivity
from repro.locking.metrics import AvalancheReport
from repro.rtlir import Design
from repro.sim import BatchCompileError

PASSTHROUGH = """
module pass4 (input [3:0] a, input [3:0] b, output [3:0] y, output [3:0] z);
  assign y = a;
  assign z = b;
endmodule
"""

MIXER = """
module mixer (input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);
  wire [7:0] t0 = a + b;
  wire [7:0] t1 = t0 ^ c;
  wire [7:0] t2 = t1 * a;
  assign y = t2 - b;
endmodule
"""

DYNAMIC = """
module dynrep (input [3:0] a, input [1:0] n, output [7:0] y);
  assign y = {n{a}} + a;
endmodule
"""


class TestAvalancheSemantics:
    def test_passthrough_flips_exactly_one_output_bit(self):
        design = Design.from_verilog(PASSTHROUGH)
        report = avalanche_sensitivity(design, signal="a", vectors=4,
                                       rng=random.Random(0))
        # Flipping bit i of `a` flips exactly bit i of `y`: 1 of 8 output
        # bits, on every context lane.
        assert report.signal == "a"
        assert report.bit_indices == [0, 1, 2, 3]
        assert report.per_bit == [1.0 / 8] * 4
        assert report.lanes_changed == [1.0] * 4

    def test_dead_input_scores_zero(self):
        design = Design.from_verilog(PASSTHROUGH.replace(
            "assign z = b;", "assign z = a;"))
        report = avalanche_sensitivity(design, signal="b", vectors=4,
                                       rng=random.Random(0))
        assert report.per_bit == [0.0] * 4
        assert report.lanes_changed == [0.0] * 4

    def test_default_signal_is_widest_input(self):
        design = Design.from_verilog(MIXER)
        report = avalanche_sensitivity(design, vectors=4,
                                       rng=random.Random(0))
        assert report.signal == "a"

    def test_bit_subset(self):
        design = Design.from_verilog(MIXER)
        report = avalanche_sensitivity(design, signal="c", bits=[0, 7],
                                       vectors=4, rng=random.Random(0))
        assert report.bit_indices == [0, 7]
        assert len(report.per_bit) == 2

    def test_report_statistics(self):
        report = AvalancheReport(signal="a", base_value=0, vectors=2,
                                 bit_indices=[0, 1], per_bit=[0.25, 0.75],
                                 lanes_changed=[1.0, 1.0])
        assert report.mean_sensitivity == 0.5
        assert report.min_sensitivity == 0.25
        assert report.max_sensitivity == 0.75

    def test_validation_errors(self):
        design = Design.from_verilog(MIXER)
        with pytest.raises(ValueError):
            avalanche_sensitivity(design, vectors=0)
        with pytest.raises(ValueError):
            avalanche_sensitivity(design, signal="nope")
        with pytest.raises(ValueError):
            avalanche_sensitivity(design, signal="a", bits=[8])


class TestEngineEquivalence:
    def test_locked_design_under_correct_key_matches_original(self):
        design = Design.from_verilog(MIXER)
        locked = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False).lock(design, 4).design
        plain = avalanche_sensitivity(design, signal="a", vectors=8,
                                      rng=random.Random(5))
        under_key = avalanche_sensitivity(locked, signal="a", vectors=8,
                                          rng=random.Random(5))
        assert plain.per_bit == under_key.per_bit
        assert plain.lanes_changed == under_key.lanes_changed

    def test_scalar_fallback_matches_batch(self, monkeypatch):
        design = Design.from_verilog(MIXER)
        batch = avalanche_sensitivity(design, signal="b", vectors=8,
                                      rng=random.Random(3))

        def refuse(_design):
            raise BatchCompileError("forced fallback")

        monkeypatch.setattr(repro.sim, "cached_simulator", refuse)
        scalar = avalanche_sensitivity(design, signal="b", vectors=8,
                                       rng=random.Random(3))
        assert scalar.per_bit == batch.per_bit
        assert scalar.lanes_changed == batch.lanes_changed
        assert scalar.base_value == batch.base_value

    def test_non_compilable_design_uses_scalar_path(self):
        design = Design.from_verilog(DYNAMIC)
        report = avalanche_sensitivity(design, signal="a", vectors=4,
                                       rng=random.Random(0))
        assert len(report.per_bit) == 4
        assert all(0.0 <= value <= 1.0 for value in report.per_bit)


class TestMetricRegistration:
    def test_avalanche_registered_as_metric(self):
        from repro.api import make_metric

        design = Design.from_verilog(MIXER)
        locked = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False).lock(design, 2).design
        value = make_metric("avalanche")(locked, rng=random.Random(1),
                                         vectors=4)
        assert set(value) >= {"signal", "mean", "min", "max", "per_bit"}
        assert 0.0 <= value["mean"] <= 1.0

    def test_metric_scenario_roundtrip(self, tmp_path):
        from repro.api import (MetricSpec, LockerSpec, ResultsStore, Runner,
                               Scenario)

        scenario = Scenario(name="avalanche-study", benchmarks=("SASC",),
                            lockers=(LockerSpec("era"),),
                            attacks=(),
                            metrics=(MetricSpec("avalanche",
                                                {"vectors": 4}),),
                            samples=1, scale=0.15, seed=2)
        store = ResultsStore(tmp_path / "store")
        report = Runner(scenario, store=store).run()
        assert report.executed == 1
        (record,) = store.metric_values("avalanche")
        assert record["result"]["per_bit"]
