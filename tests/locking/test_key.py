"""Unit tests for key utilities."""

import random

import pytest

from repro.locking.key import (
    flip_bits,
    hamming_distance,
    int_to_key,
    key_accuracy,
    key_to_int,
    key_to_string,
    random_key,
    string_to_key,
)


class TestGeneration:
    def test_random_key_width_and_values(self):
        key = random_key(32, random.Random(0))
        assert len(key) == 32
        assert set(key) <= {0, 1}

    def test_random_key_deterministic_with_seed(self):
        assert random_key(16, random.Random(7)) == random_key(16, random.Random(7))

    def test_zero_width(self):
        assert random_key(0) == []

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            random_key(-1)


class TestConversions:
    def test_int_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert int_to_key(key_to_int(bits), 8) == bits

    def test_key_to_int_lsb_first(self):
        assert key_to_int([1, 0, 0, 0]) == 1
        assert key_to_int([0, 0, 0, 1]) == 8

    def test_int_to_key_overflow(self):
        with pytest.raises(ValueError):
            int_to_key(16, 4)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            key_to_int([0, 2, 1])

    def test_string_roundtrip(self):
        bits = [0, 1, 1, 0, 1]
        assert string_to_key(key_to_string(bits)) == bits

    def test_string_is_msb_first(self):
        assert key_to_string([1, 0, 0]) == "001"
        assert string_to_key("001") == [1, 0, 0]

    def test_string_with_separators(self):
        assert string_to_key("10_01") == [1, 0, 0, 1]

    def test_invalid_string_rejected(self):
        with pytest.raises(ValueError):
            string_to_key("10x1")


class TestComparison:
    def test_hamming_distance(self):
        assert hamming_distance([1, 0, 1], [1, 1, 1]) == 1
        assert hamming_distance([0, 0], [1, 1]) == 2
        assert hamming_distance([1], [1]) == 0

    def test_hamming_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([1, 0], [1])

    def test_key_accuracy(self):
        assert key_accuracy([1, 0, 1, 1], [1, 0, 1, 1]) == 1.0
        assert key_accuracy([1, 0, 1, 1], [0, 1, 0, 0]) == 0.0
        assert key_accuracy([1, 0, 1, 1], [1, 0, 0, 0]) == 0.5

    def test_key_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            key_accuracy([], [])

    def test_flip_bits(self):
        assert flip_bits([0, 0, 0], [0, 2]) == [1, 0, 1]
        with pytest.raises(IndexError):
            flip_bits([0, 0], [5])
