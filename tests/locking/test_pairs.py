"""Unit tests for the locking-pair tables."""

import pytest

from repro.locking.pairs import (
    ORIGINAL_ASSURE_TABLE,
    SYMMETRIC_PAIR_TABLE,
    PairingError,
    PairTable,
    default_pair_table,
    make_symmetric,
)
from repro.rtlir.operations import LOCKABLE_OPERATORS


class TestSymmetricTable:
    def test_is_symmetric(self):
        assert SYMMETRIC_PAIR_TABLE.is_symmetric()
        assert SYMMETRIC_PAIR_TABLE.asymmetric_entries() == []

    def test_every_lockable_operator_has_a_pair(self):
        for op in LOCKABLE_OPERATORS:
            if op == "^~":  # normalised alias of ~^
                continue
            assert SYMMETRIC_PAIR_TABLE.has_pair(op), op

    def test_pairings_from_the_paper(self):
        # Section 3.2: "(*, /) and (/, *)"; operation example of Fig. 3: (+, -).
        assert SYMMETRIC_PAIR_TABLE.dummy_of("*") == "/"
        assert SYMMETRIC_PAIR_TABLE.dummy_of("/") == "*"
        assert SYMMETRIC_PAIR_TABLE.dummy_of("+") == "-"
        assert SYMMETRIC_PAIR_TABLE.dummy_of("-") == "+"

    def test_unordered_pairs_are_disjoint(self):
        seen = set()
        for first, second in SYMMETRIC_PAIR_TABLE.unordered_pairs():
            assert first not in seen and second not in seen
            seen.update({first, second})

    def test_pair_of(self):
        pair = SYMMETRIC_PAIR_TABLE.pair_of("-")
        assert set(pair) == {"+", "-"}

    def test_alias_normalisation(self):
        assert SYMMETRIC_PAIR_TABLE.dummy_of("^~") == SYMMETRIC_PAIR_TABLE.dummy_of("~^")

    def test_default_table_is_symmetric(self):
        assert default_pair_table() is SYMMETRIC_PAIR_TABLE


class TestOriginalTable:
    def test_is_asymmetric(self):
        assert not ORIGINAL_ASSURE_TABLE.is_symmetric()

    def test_leakage_points_from_the_paper(self):
        # "* is paired with a +, but + is also paired with -" (Section 3.2).
        assert ORIGINAL_ASSURE_TABLE.dummy_of("*") == "+"
        assert ORIGINAL_ASSURE_TABLE.dummy_of("+") == "-"
        leaks = dict(ORIGINAL_ASSURE_TABLE.asymmetric_entries())
        assert "*" in leaks
        # Leakage also exists for modulo, power, division and xor.
        for leaky_op in ("%", "**", "/", "^"):
            assert leaky_op in leaks

    def test_symmetric_subset_not_reported_as_leaky(self):
        leaks = dict(ORIGINAL_ASSURE_TABLE.asymmetric_entries())
        assert "<<" not in leaks
        assert "==" not in leaks


class TestTableConstruction:
    def test_unknown_operator_rejected(self):
        with pytest.raises(PairingError):
            PairTable("bad", {"+": "noop"})

    def test_self_pairing_rejected(self):
        with pytest.raises(PairingError):
            PairTable("bad", {"+": "+"})

    def test_duplicate_membership_rejected(self):
        with pytest.raises(PairingError):
            make_symmetric([("+", "-"), ("+", "*")], name="bad")

    def test_missing_pair_lookup_raises(self):
        table = make_symmetric([("+", "-")], name="tiny")
        with pytest.raises(PairingError):
            table.dummy_of("*")

    def test_supported_operators(self):
        table = make_symmetric([("+", "-"), ("<<", ">>")], name="tiny")
        assert set(table.supported_operators()) == {"+", "-", "<<", ">>"}
        assert len(table.unordered_pairs()) == 2
