"""Unit tests for the core locking primitives (LockingSession)."""

import random

import pytest

from repro.locking import LockingError, LockingSession
from repro.rtlir import Design
from repro.verilog import ast
from repro.verilog.parser import parse_module

from ..conftest import MIXER_SOURCE


@pytest.fixture
def session(mixer_design, rng):
    return LockingSession(mixer_design, rng=rng)


class TestRegistry:
    def test_registry_matches_census(self, session, mixer_design):
        census = mixer_design.operation_census()
        for op, count in census.items():
            assert len(session.ops_of_type(op)) == count
        assert len(session.all_ops()) == sum(census.values())

    def test_dummy_registered_after_add_pair(self, session):
        ref = session.ops_of_type("*")[0]
        session.add_pair(ref)
        assert len(session.ops_of_type("/")) == 1
        assert session.ops_of_type("/")[0].is_dummy

    def test_ops_of_unknown_type_empty(self, session):
        assert session.ops_of_type("%") == []


class TestOperationLocking:
    def test_add_pair_creates_key_controlled_ternary(self, session, mixer_design):
        ref = session.ops_of_type("+")[0]
        action = session.add_pair(ref)
        assert action.kind == "operation"
        assert action.bits_used == 1
        assert mixer_design.key_width == 1
        assert mixer_design.key_port is not None
        ternary = action.replacement
        assert isinstance(ternary, ast.TernaryOp)
        branch_ops = {ternary.true_value.op, ternary.false_value.op}
        assert branch_ops == {"+", "-"}

    def test_ternary_branch_matches_key_value(self, session, mixer_design):
        ref = session.ops_of_type("+")[0]
        action = session.add_pair(ref, correct_value=1)
        assert action.replacement.true_value is action.original
        other = session.ops_of_type("*")[0]
        action0 = session.add_pair(other, correct_value=0)
        assert action0.replacement.false_value is action0.original

    def test_custom_dummy_operator(self, session):
        ref = session.ops_of_type("+")[0]
        action = session.add_pair(ref, dummy_op="*")
        assert action.dummy_op == "*"
        assert action.replacement.true_value.op in {"+", "*"}

    def test_key_port_width_tracks_bits(self, session, mixer_design):
        for index in range(3):
            session.add_pair(session.ops_of_type("+")[index % 3])
        port = mixer_design.top.find_port(mixer_design.key_port)
        assert port.width.width() == 3

    def test_odt_updated_by_add_pair(self, session):
        before = session.odt["+"]
        session.add_pair(session.ops_of_type("+")[0])
        assert session.odt["+"] == before - 1
        assert session.odt.is_affected("+")

    def test_dummy_operands_are_clones(self, session):
        ref = session.ops_of_type("+")[0]
        action = session.add_pair(ref, correct_value=1)
        dummy = action.replacement.false_value
        real = action.original
        assert dummy.left is not real.left
        assert dummy.right is not real.right

    def test_relocking_a_locked_operation(self, session, mixer_design):
        ref = session.ops_of_type("+")[0]
        session.add_pair(ref)
        # Relock the same (now nested) real operation again.
        session.add_pair(ref)
        assert mixer_design.key_width == 2
        text = mixer_design.to_verilog()
        assert text.count(f"{mixer_design.key_port}[") >= 2

    def test_stale_reference_rejected(self, mixer_design, rng):
        session = LockingSession(mixer_design, rng=rng)
        ref = session.ops_of_type("+")[0]
        # Manually replace the node behind the session's back.
        ref.parent.replace_child(ref.node, ast.Identifier("oops"))
        with pytest.raises(LockingError):
            session.add_pair(ref)
        # The failed attempt must not leave a dangling key bit.
        assert mixer_design.key_width == 0


class TestBranchLocking:
    def test_branch_lock_inverts_on_one(self, mixer_design, rng):
        session = LockingSession(mixer_design, rng=rng)
        branch = [node for node in mixer_design.top.iter_tree()
                  if isinstance(node, ast.IfStatement)][0]
        original_cond = branch.cond
        action = session.lock_branch(branch, correct_value=1)
        assert action.kind == "branch"
        assert isinstance(branch.cond, ast.BinaryOp)
        assert branch.cond.op == "^"
        assert mixer_design.key_bits[0].kind == "branch"
        assert branch.cond is not original_cond

    def test_branch_lock_keeps_condition_on_zero(self, mixer_design, rng):
        session = LockingSession(mixer_design, rng=rng)
        branch = [node for node in mixer_design.top.iter_tree()
                  if isinstance(node, ast.IfStatement)][1]
        cond_text_before = mixer_design.to_verilog()
        action = session.lock_branch(branch, correct_value=0)
        assert action.key_bits[0].correct_value == 0
        # With value 0 the original comparison survives inside the XOR.
        assert "(a > b)" in mixer_design.to_verilog()

    def test_relational_negation(self, mixer_design, rng):
        session = LockingSession(mixer_design, rng=rng)
        branch = [node for node in mixer_design.top.iter_tree()
                  if isinstance(node, ast.IfStatement)][1]
        session.lock_branch(branch, correct_value=1)
        # 'a > b' must be inverted to 'a <= b' (paper's example).
        assert "(a <= b)" in mixer_design.to_verilog()


class TestConstantLocking:
    def test_constant_lock_multi_bit(self, rng):
        module_text = """
        module consts (input [7:0] a, output [7:0] y);
          assign y = a + 8'h5A;
        endmodule
        """
        design = Design.from_verilog(module_text)
        session = LockingSession(design, rng=rng)
        assign = design.top.items[0]
        constant = assign.rhs.right
        action = session.lock_constant(assign.rhs, constant)
        assert action.bits_used == 8
        assert design.key_width == 8
        # The correct key bits spell the hidden constant 0x5A.
        value = sum(bit.correct_value << i for i, bit in enumerate(design.key_bits))
        assert value == 0x5A
        assert "8'h5a" not in design.to_verilog().lower()

    def test_constant_lock_single_bit(self, rng):
        design = Design.from_verilog(
            "module c1 (input a, output y); assign y = a ^ 1'b1; endmodule")
        session = LockingSession(design, rng=rng)
        assign = design.top.items[0]
        action = session.lock_constant(assign.rhs, assign.rhs.right)
        assert action.bits_used == 1
        assert design.key_bits[0].correct_value == 1

    def test_constant_with_unknown_bits_rejected(self, rng):
        design = Design.from_verilog(
            "module cx (input [3:0] a, output [3:0] y); assign y = a & 4'b1x0x; endmodule")
        session = LockingSession(design, rng=rng)
        assign = design.top.items[0]
        with pytest.raises(LockingError):
            session.lock_constant(assign.rhs, assign.rhs.right)
        assert design.key_width == 0


class TestUndo:
    def test_undo_operation_restores_text_and_odt(self, mixer_design, rng):
        original_text = mixer_design.to_verilog()
        session = LockingSession(mixer_design, rng=rng)
        original_odt = session.odt["+"]
        action = session.add_pair(session.ops_of_type("+")[0])
        session.undo(action)
        assert mixer_design.to_verilog() == original_text
        assert mixer_design.key_width == 0
        assert mixer_design.key_port is None
        assert session.odt["+"] == original_odt
        assert len(session.ops_of_type("-")) == 1  # only the original '-'

    def test_undo_branch_and_constant(self, rng):
        design = Design.from_verilog("""
        module m (input [3:0] a, b, output reg [3:0] y);
          always @(*) begin
            if (a > b) y = a + 4'd3; else y = b;
          end
        endmodule
        """)
        original = design.to_verilog()
        session = LockingSession(design, rng=rng)
        branch = [n for n in design.top.iter_tree()
                  if isinstance(n, ast.IfStatement)][0]
        action = session.lock_branch(branch)
        session.undo(action)
        assert design.to_verilog() == original

    def test_undo_must_be_lifo(self, session):
        first = session.add_pair(session.ops_of_type("+")[0])
        session.add_pair(session.ops_of_type("*")[0])
        with pytest.raises(LockingError):
            session.undo(first)

    def test_undo_last_multiple(self, mixer_design, rng):
        original = mixer_design.to_verilog()
        session = LockingSession(mixer_design, rng=rng)
        session.add_pair(session.ops_of_type("+")[0])
        session.add_pair(session.ops_of_type("*")[0])
        session.undo_last(2)
        assert mixer_design.to_verilog() == original

    def test_undo_with_nothing_to_undo(self, session):
        with pytest.raises(LockingError):
            session.undo_last(1)


class TestRelockingSessions:
    def test_session_on_locked_design_preserves_existing_bits(self, mixer_design, rng):
        first = LockingSession(mixer_design, rng=rng)
        first.add_pair(first.ops_of_type("+")[0])
        second = LockingSession(mixer_design, rng=random.Random(9))
        second.add_pair(second.ops_of_type("*")[0])
        assert mixer_design.key_width == 2
        assert [bit.index for bit in mixer_design.key_bits] == [0, 1]

    def test_existing_locks_marked_affected(self, mixer_design, rng):
        first = LockingSession(mixer_design, rng=rng)
        first.add_pair(first.ops_of_type("+")[0])
        second = LockingSession(mixer_design, rng=random.Random(9))
        assert second.odt.is_affected("+")
