"""Unit tests for the LockResult container."""

import random

from repro.locking import AssureLocker, ERALocker
from repro.locking.result import LockResult
from repro.rtlir import Design, KeyBit

from ..conftest import MIXER_SOURCE


class TestLockResult:
    def test_correct_key_lists_new_bits_only(self, mixer_design, rng):
        first = AssureLocker("serial", rng=rng).lock(mixer_design, 3)
        relock = AssureLocker("random", rng=random.Random(1)).relock(
            first.design, 2)
        assert len(relock.correct_key) == 2
        assert relock.correct_key == [bit.correct_value
                                      for bit in relock.design.key_bits[3:]]

    def test_exceeded_budget_flag(self, plus_chain_design, rng):
        era = ERALocker(rng=rng).lock(plus_chain_design, 2)
        assert era.bits_used > 2
        assert era.exceeded_budget
        assure = AssureLocker("serial", rng=random.Random(2)).lock(
            plus_chain_design, 2)
        assert not assure.exceeded_budget

    def test_summary_without_tracker(self):
        design = Design.from_verilog(MIXER_SOURCE)
        result = LockResult(design=design, algorithm="manual", key_budget=4,
                            bits_used=4,
                            new_key_bits=[KeyBit(0, "operation", 1, "+", "-")])
        text = result.summary()
        assert "manual" in text
        assert "4/4" in text
        assert "M_g_sec" not in text

    def test_summary_with_tracker(self, mixer_design, rng):
        result = AssureLocker("serial", rng=rng).lock(mixer_design, 3)
        text = result.summary()
        assert "M_g_sec" in text and "M_r_sec" in text
