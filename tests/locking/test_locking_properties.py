"""Property-based tests on locking invariants (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import profile_design
from repro.bench.profiles import BenchmarkProfile
from repro.locking import (
    AssureLocker,
    ERALocker,
    HRALocker,
    LockingSession,
    key_to_int,
    int_to_key,
    odt_from_design,
)

#: Operators the random profiles draw from (kept small so designs stay tiny).
_PROFILE_OPS = ["+", "-", "*", "/", "<<", ">>", "&", "|", "^", "=="]


@st.composite
def small_profiles(draw):
    """Random small operation profiles (3-30 operations over 1-4 types)."""
    n_types = draw(st.integers(min_value=1, max_value=4))
    operators = draw(st.permutations(_PROFILE_OPS))[:n_types]
    operations = {}
    for op in operators:
        operations[op] = draw(st.integers(min_value=1, max_value=8))
    return BenchmarkProfile(name="hyp_profile", description="hypothesis profile",
                            operations=operations, sequential=False, n_inputs=4)


def build_design(profile, seed):
    return profile_design(profile, seed=seed)


class TestSessionInvariants:
    @given(profile=small_profiles(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_lock_then_undo_is_identity(self, profile, seed):
        design = build_design(profile, seed)
        original = design.to_verilog()
        session = LockingSession(design, rng=random.Random(seed))
        refs = session.all_ops()
        actions = [session.add_pair(ref) for ref in refs[: min(4, len(refs))]]
        for action in reversed(actions):
            session.undo(action)
        assert design.to_verilog() == original
        assert design.key_width == 0

    @given(profile=small_profiles(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_locking_adds_exactly_one_operation_per_bit(self, profile, seed):
        design = build_design(profile, seed)
        total_before = design.num_operations()
        budget = min(5, total_before)
        result = AssureLocker("random", rng=random.Random(seed),
                              track_metrics=False).lock(design, budget)
        assert result.design.num_operations() == total_before + result.bits_used

    @given(profile=small_profiles(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_odt_antisymmetry_preserved_by_locking(self, profile, seed):
        design = build_design(profile, seed)
        result = AssureLocker("random", rng=random.Random(seed),
                              track_metrics=False).lock(design, 4)
        odt = odt_from_design(result.design)
        for first, second in odt.pairs():
            assert odt.value(first) == -odt.value(second)


class TestAlgorithmInvariants:
    @given(profile=small_profiles(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_era_balances_every_affected_pair(self, profile, seed):
        design = build_design(profile, seed)
        budget = max(1, int(0.75 * design.num_operations()))
        result = ERALocker(rng=random.Random(seed),
                           track_metrics=False).lock(design, budget)
        odt = odt_from_design(result.design)
        affected = set()
        for bit in result.design.key_bits:
            affected.add(bit.real_op)
            affected.add(bit.dummy_op)
        for first, second in odt.pairs():
            if first in affected or second in affected:
                assert odt.value(first) == 0

    @given(profile=small_profiles(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_hra_respects_budget_within_one_step(self, profile, seed):
        design = build_design(profile, seed)
        budget = max(1, design.num_operations() // 2)
        result = HRALocker(rng=random.Random(seed),
                           track_metrics=False).lock(design, budget)
        assert result.bits_used <= budget + 1

    @given(profile=small_profiles(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_correct_key_width_matches_key_bits(self, profile, seed):
        design = build_design(profile, seed)
        result = AssureLocker("random", rng=random.Random(seed),
                              track_metrics=False).lock(design, 3)
        locked = result.design
        assert len(locked.correct_key) == locked.key_width
        for bit in locked.key_bits:
            assert locked.correct_key[bit.index] == bit.correct_value


class TestKeyProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_key_int_roundtrip(self, bits):
        assert int_to_key(key_to_int(bits), len(bits)) == bits

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_int_key_roundtrip(self, value):
        assert key_to_int(int_to_key(value, 32)) == value
