"""Unit tests for ASSURE-style locking (baseline scheme)."""

import random

import pytest

from repro.locking import AssureLocker
from repro.locking.pairs import ORIGINAL_ASSURE_TABLE
from repro.rtlir import Design
from repro.verilog import ast


class TestOperationLocking:
    def test_budget_respected_exactly(self, mixer_design, rng):
        result = AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=4)
        assert result.bits_used == 4
        assert result.design.key_width == 4
        assert not result.exceeded_budget

    def test_budget_larger_than_design_locks_everything(self, mixer_design, rng):
        total = mixer_design.num_operations()
        result = AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=999)
        assert result.bits_used == total

    def test_zero_budget(self, mixer_design, rng):
        result = AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=0)
        assert result.bits_used == 0
        assert not result.design.is_locked

    def test_negative_budget_rejected(self, mixer_design, rng):
        with pytest.raises(ValueError):
            AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=-1)

    def test_input_design_untouched_by_default(self, mixer_design, rng):
        before = mixer_design.to_verilog()
        AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=3)
        assert mixer_design.to_verilog() == before

    def test_in_place_locking(self, mixer_design, rng):
        result = AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=3,
                                                      in_place=True)
        assert result.design is mixer_design
        assert mixer_design.key_width == 3

    def test_dummy_operator_follows_pair_table(self, mixer_design, rng):
        result = AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=6)
        from repro.locking.pairs import SYMMETRIC_PAIR_TABLE
        for bit in result.design.key_bits:
            assert bit.kind == "operation"
            assert bit.dummy_op is not None
            # With the symmetric table the dummy is always the pair partner.
            assert SYMMETRIC_PAIR_TABLE.dummy_of(bit.real_op) == bit.dummy_op

    def test_key_values_are_not_constant(self, plus_chain_design):
        result = AssureLocker("serial", rng=random.Random(3)).lock(
            plus_chain_design, key_budget=6)
        values = {bit.correct_value for bit in result.design.key_bits}
        assert values == {0, 1}

    def test_original_pair_table_supported(self, mixer_design, rng):
        locker = AssureLocker("serial", pair_table=ORIGINAL_ASSURE_TABLE, rng=rng)
        result = locker.lock(mixer_design, key_budget=5)
        for bit in result.design.key_bits:
            assert ORIGINAL_ASSURE_TABLE.dummy_of(bit.real_op) == bit.dummy_op

    def test_invalid_selection_mode(self):
        with pytest.raises(ValueError):
            AssureLocker("alphabetical")

    def test_algorithm_name_includes_selection(self, mixer_design, rng):
        result = AssureLocker("random", rng=rng).lock(mixer_design, 2)
        assert result.algorithm == "assure-random"


class TestSelectionStrategies:
    def test_serial_selection_is_deterministic_in_targets(self, plus_chain_design):
        first = AssureLocker("serial", rng=random.Random(0)).lock(
            plus_chain_design, key_budget=3)
        second = AssureLocker("serial", rng=random.Random(99)).lock(
            plus_chain_design, key_budget=3)
        # Key values differ (random), but the same operations are locked: the
        # generated ternaries sit in the same assignments.
        def locked_wires(design):
            wires = []
            for item in design.top.items:
                if isinstance(item, ast.NetDeclaration) and item.init is not None:
                    if isinstance(item.init, ast.TernaryOp):
                        wires.append(item.names[0])
            return wires

        assert locked_wires(first.design) == locked_wires(second.design)

    def test_serial_selection_follows_topological_order(self, plus_chain_design, rng):
        result = AssureLocker("serial", rng=rng).lock(plus_chain_design, key_budget=2)
        locked = [item.names[0] for item in result.design.top.items
                  if isinstance(item, ast.NetDeclaration)
                  and isinstance(item.init, ast.TernaryOp)]
        assert locked == ["s0", "s1"]

    def test_random_selection_varies_targets(self, plus_chain_design):
        def locked_wires(seed):
            result = AssureLocker("random", rng=random.Random(seed)).lock(
                plus_chain_design, key_budget=2)
            return tuple(item.names[0] for item in result.design.top.items
                         if isinstance(item, ast.NetDeclaration)
                         and isinstance(item.init, ast.TernaryOp))

        outcomes = {locked_wires(seed) for seed in range(12)}
        assert len(outcomes) > 1


class TestRelocking:
    def test_relock_appends_key_bits(self, mixer_design, rng):
        first = AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=3)
        second = AssureLocker("random", rng=random.Random(5)).relock(
            first.design, key_budget=4)
        assert second.design.key_width == 7
        assert [b.index for b in second.design.key_bits] == list(range(7))
        # The original target is untouched.
        assert first.design.key_width == 3

    def test_relock_creates_nested_ternaries(self, plus_chain_design):
        first = AssureLocker("serial", rng=random.Random(0)).lock(
            plus_chain_design, key_budget=6)
        second = AssureLocker("random", rng=random.Random(1)).relock(
            first.design, key_budget=6)
        text = second.design.to_verilog()
        # At least one branch of an existing ternary now holds another ternary.
        nested = [node for node in second.design.top.iter_tree()
                  if isinstance(node, ast.TernaryOp)
                  and (isinstance(node.true_value, ast.TernaryOp)
                       or isinstance(node.false_value, ast.TernaryOp))]
        assert nested
        assert text.count("?") == 12


class TestOtherTechniques:
    def test_constant_obfuscation(self, rng):
        design = Design.from_verilog("""
        module c (input [7:0] a, output [7:0] x, y);
          assign x = a + 8'd37;
          assign y = a ^ 8'hF0;
        endmodule
        """)
        result = AssureLocker(rng=rng).lock_constants(design, max_constants=2)
        assert result.bits_used == 16
        assert all(bit.kind == "constant" for bit in result.design.key_bits)
        text = result.design.to_verilog().lower()
        assert "8'd37" not in text
        assert "8'hf0" not in text

    def test_branch_obfuscation(self, mixer_design, rng):
        result = AssureLocker(rng=rng).lock_branches(mixer_design, max_branches=2)
        assert result.bits_used == 2
        assert all(bit.kind == "branch" for bit in result.design.key_bits)

    def test_branch_budget_zero(self, mixer_design, rng):
        result = AssureLocker(rng=rng).lock_branches(mixer_design, max_branches=0)
        assert result.bits_used == 0

    def test_negative_limits_rejected(self, mixer_design, rng):
        with pytest.raises(ValueError):
            AssureLocker(rng=rng).lock_constants(mixer_design, -1)
        with pytest.raises(ValueError):
            AssureLocker(rng=rng).lock_branches(mixer_design, -2)


class TestMetricsTracking:
    def test_tracker_present_by_default(self, mixer_design, rng):
        result = AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=3)
        assert result.tracker is not None
        assert len(result.tracker.points) == 3

    def test_tracker_disabled(self, mixer_design, rng):
        result = AssureLocker("serial", rng=rng, track_metrics=False).lock(
            mixer_design, key_budget=3)
        assert result.tracker is None

    def test_summary_mentions_algorithm(self, mixer_design, rng):
        result = AssureLocker("serial", rng=rng).lock(mixer_design, key_budget=3)
        assert "assure-serial" in result.summary()
