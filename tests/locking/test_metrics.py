"""Unit tests for the learning-resilience security metrics."""

import numpy as np
import pytest

from repro.locking import (
    LockingSession,
    MetricTracker,
    global_metric,
    lock_step,
    metric_surface,
    modified_euclidean,
    restricted_metric,
    security_metric,
)
from repro.locking.odt import OperationDistributionTable
from repro.rtlir import Design


class TestModifiedEuclidean:
    def test_plain_distance(self):
        assert modified_euclidean([3.0, 4.0], [0.0, 0.0]) == pytest.approx(5.0)

    def test_nan_entries_excluded(self):
        # The 'x' marker of Algorithm 2: the second entry is ignored.
        assert modified_euclidean([3.0, 100.0], [0.0, np.nan]) == pytest.approx(3.0)

    def test_all_nan_gives_zero(self):
        assert modified_euclidean([1.0, 2.0], [np.nan, np.nan]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            modified_euclidean([1.0], [0.0, 0.0])

    def test_identity(self):
        assert modified_euclidean([2.0, 5.0], [2.0, 5.0]) == 0.0


class TestSecurityMetric:
    def test_initial_design_scores_zero(self):
        assert security_metric([25.0, 10.0], [25.0, 10.0]) == pytest.approx(0.0)

    def test_optimal_design_scores_hundred(self):
        assert security_metric([25.0, 10.0], [0.0, 0.0]) == pytest.approx(100.0)

    def test_intermediate_value(self):
        initial = [25.0, 10.0]
        current = [12.5, 5.0]
        assert security_metric(initial, current) == pytest.approx(50.0)

    def test_already_optimal_initial_design(self):
        # d(v_i, v_o) == 0: the design starts balanced; metric is 100 by definition.
        assert security_metric([0.0, 0.0], [0.0, 0.0]) == 100.0

    def test_metric_is_clipped_to_range(self):
        # Worse-than-initial distributions clamp at 0 rather than going negative.
        assert security_metric([5.0], [50.0]) == 0.0

    def test_restricted_exclusions(self):
        initial = [25.0, 10.0]
        current = [0.0, 10.0]
        optimal = [0.0, np.nan]
        assert security_metric(initial, current, optimal) == pytest.approx(100.0)


class TestOdtMetrics:
    def _session(self, rng):
        design = Design.from_verilog("""
        module m (input [7:0] a, b, output [7:0] x, y, z);
          wire [7:0] t0 = a + b;
          wire [7:0] t1 = t0 + a;
          wire [7:0] t2 = a * b;
          assign x = t0;
          assign y = t1;
          assign z = t2;
        endmodule
        """)
        return LockingSession(design, rng=rng)

    def test_global_metric_increases_with_balancing(self, rng):
        session = self._session(rng)
        initial = session.odt.vector()
        start = global_metric(session.odt, initial)
        lock_step(session, "+")
        after_one = global_metric(session.odt, initial)
        lock_step(session, "+")
        after_two = global_metric(session.odt, initial)
        assert start < after_one < after_two

    def test_restricted_metric_is_100_without_affected_pairs(self, rng):
        session = self._session(rng)
        assert restricted_metric(session.odt, session.odt.vector()) == 100.0

    def test_restricted_metric_drops_when_affected_pair_unbalanced(self, rng):
        session = self._session(rng)
        initial = session.odt.vector()
        lock_step(session, "*")            # balances (*, /) in one step
        assert restricted_metric(session.odt, initial) == pytest.approx(100.0)
        session.odt.mark_affected("+")     # (+,-) becomes relevant but unbalanced
        assert restricted_metric(session.odt, initial) < 100.0

    def test_global_100_implies_restricted_100(self, rng):
        session = self._session(rng)
        initial = session.odt.vector()
        for op in ("+", "+", "*"):
            lock_step(session, op)
        assert global_metric(session.odt, initial) == pytest.approx(100.0)
        assert restricted_metric(session.odt, initial) == pytest.approx(100.0)


class TestMetricTracker:
    def test_records_series(self):
        odt = OperationDistributionTable({"+": 5, "-": 1})
        tracker = MetricTracker(odt.vector())
        tracker.record(odt, key_bits=0)
        odt.add_operation("-")
        tracker.record(odt, key_bits=1)
        bits, global_series, restricted_series = tracker.as_series()
        assert bits == [0, 1]
        assert global_series[0] < global_series[1]
        assert tracker.final_global == global_series[-1]

    def test_empty_tracker_defaults(self):
        tracker = MetricTracker(np.array([1.0]))
        assert tracker.final_global == 100.0
        assert tracker.final_restricted == 100.0


class TestMetricSurface:
    def test_surface_shape_and_extremes(self):
        surface = metric_surface([25, 10])
        assert surface.shape == (26, 11)
        assert surface[0, 0] == pytest.approx(0.0)      # initial point
        assert surface[25, 10] == pytest.approx(100.0)  # secure point

    def test_surface_monotone_along_axes(self):
        surface = metric_surface([25, 10])
        assert np.all(np.diff(surface, axis=0) >= -1e-9)
        assert np.all(np.diff(surface, axis=1) >= -1e-9)

    def test_explicit_steps(self):
        surface = metric_surface([4, 4], steps=[3, 3])
        assert surface.shape == (3, 3)

    def test_steps_mismatch_raises(self):
        with pytest.raises(ValueError):
            metric_surface([4, 4], steps=[3])
