"""Unit tests for HRA (Heuristic ML-Resilient Algorithm) and the Greedy variant."""

import random

import pytest

from repro.bench import plus_network
from repro.eval.figures import figure5_design
from repro.locking import GreedyLocker, HRALocker, global_metric, odt_from_design


class TestBudgetDiscipline:
    def test_budget_not_exceeded_by_more_than_one_step(self, mixer_design, rng):
        budget = 6
        result = HRALocker(rng=rng).lock(mixer_design, key_budget=budget)
        # The last step may add two bits (pair mode), never more.
        assert budget <= result.bits_used <= budget + 1

    def test_zero_budget(self, mixer_design, rng):
        result = HRALocker(rng=rng).lock(mixer_design, key_budget=0)
        assert result.bits_used == 0

    def test_negative_budget_rejected(self, mixer_design, rng):
        with pytest.raises(ValueError):
            HRALocker(rng=rng).lock(mixer_design, key_budget=-1)

    def test_input_not_mutated(self, mixer_design, rng):
        before = mixer_design.to_verilog()
        HRALocker(rng=rng).lock(mixer_design, key_budget=5)
        assert mixer_design.to_verilog() == before


class TestMetricGuidance:
    def test_global_metric_never_decreases(self, rng):
        design = figure5_design(12, 5, seed=1)
        result = HRALocker(rng=rng).lock(design, key_budget=30)
        values = [p.global_value for p in result.tracker.points]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_hra_improves_over_initial(self, rng):
        design = plus_network(16, name="plus16")
        result = HRALocker(rng=rng).lock(design, key_budget=12)
        assert result.tracker.final_global > 0.0

    def test_greedy_reaches_full_security_with_exact_budget(self):
        design = figure5_design(10, 4, seed=2)
        result = GreedyLocker(rng=random.Random(0)).lock(design, key_budget=14)
        assert result.tracker.final_global == pytest.approx(100.0)
        assert result.bits_used == 14
        assert odt_from_design(result.design).fully_balanced()

    def test_greedy_never_uses_pair_mode(self, mixer_design):
        result = GreedyLocker(rng=random.Random(1)).lock(mixer_design, key_budget=6)
        assert result.statistics["random_steps"] == 0
        assert result.algorithm == "greedy"

    def test_hra_uses_random_steps_sometimes(self):
        design = figure5_design(15, 8, seed=3)
        result = HRALocker(rng=random.Random(2)).lock(design, key_budget=40)
        assert result.statistics["random_steps"] > 0
        assert result.algorithm == "hra"

    def test_greedy_needs_no_more_bits_than_hra(self):
        # Section 4.4: the greedy variant reaches full security with fewer (or
        # equal) key bits than HRA's randomised walk.
        design = figure5_design(12, 6, seed=4)
        budget = 4 * (12 + 6)

        def bits_to_full(locker):
            result = locker.lock(design, key_budget=budget)
            for point in result.tracker.points:
                if point.global_value >= 100.0 - 1e-9:
                    return point.key_bits
            return budget + 1

        greedy_bits = bits_to_full(GreedyLocker(rng=random.Random(5)))
        hra_bits = bits_to_full(HRALocker(rng=random.Random(5)))
        assert greedy_bits <= hra_bits

    def test_hra_on_already_balanced_design_keeps_balance(self, rng):
        from repro.bench import alternating_network
        design = alternating_network(5, name="balanced10")
        result = HRALocker(rng=rng).lock(design, key_budget=6)
        assert odt_from_design(result.design).value("+") == 0

    def test_tracking_disabled(self, mixer_design, rng):
        result = HRALocker(rng=rng, track_metrics=False).lock(mixer_design, 4)
        assert result.tracker is None
