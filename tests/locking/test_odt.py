"""Unit tests for the operation distribution table."""

import numpy as np
import pytest

from repro.locking.odt import OperationDistributionTable, odt_from_design
from repro.locking.pairs import ORIGINAL_ASSURE_TABLE, make_symmetric


def make_odt(census):
    return OperationDistributionTable(census)


class TestValues:
    def test_paper_example(self):
        # "a design with 7 '+' and 5 '-' has ODT[+] = +2 and ODT[-] = -2"
        odt = make_odt({"+": 7, "-": 5})
        assert odt["+"] == 2
        assert odt["-"] == -2

    def test_value_antisymmetry(self):
        odt = make_odt({"*": 3, "/": 9, "<<": 2})
        assert odt["*"] == -odt["/"]
        assert odt["<<"] == -odt[">>"]

    def test_missing_operators_default_to_zero(self):
        odt = make_odt({})
        assert odt["%"] == 0
        assert odt.count("%") == 0

    def test_unpaired_operators_tracked_separately(self):
        odt = make_odt({"&&": 4, "+": 1})
        assert odt.count("&&") == 0  # not part of any pair
        assert "unpaired" in odt.to_text()

    def test_from_design(self, mixer_design):
        odt = odt_from_design(mixer_design)
        assert odt["+"] == 2   # 3 '+' vs 1 '-'
        assert odt["*"] == 1
        assert odt["^"] == 2


class TestMutation:
    def test_add_and_remove_roundtrip(self):
        odt = make_odt({"+": 3, "-": 1})
        odt.add_operation("-")
        assert odt["+"] == 1
        odt.remove_operation("-")
        assert odt["+"] == 2

    def test_remove_below_zero_raises(self):
        odt = make_odt({"+": 1})
        with pytest.raises(ValueError):
            odt.remove_operation("-")

    def test_affected_tracking(self):
        odt = make_odt({"+": 3, "-": 1, "*": 2})
        assert odt.affected_pairs() == []
        odt.add_operation("-")
        assert ("+", "-") in odt.affected_pairs() or ("-", "+") in odt.affected_pairs()
        assert odt.is_affected("+")
        assert not odt.is_affected("*")
        odt.clear_affected()
        assert odt.affected_pairs() == []

    def test_add_without_marking_affected(self):
        odt = make_odt({"+": 1})
        odt.add_operation("-", mark_affected=False)
        assert not odt.is_affected("+")


class TestBalanceQueries:
    def test_is_balanced(self):
        odt = make_odt({"+": 2, "-": 2, "*": 1})
        assert odt.is_balanced("+")
        assert not odt.is_balanced("*")

    def test_fully_balanced_global_and_affected(self):
        odt = make_odt({"+": 2, "-": 2, "*": 1})
        assert not odt.fully_balanced()
        assert odt.fully_balanced(affected_only=True)  # nothing affected yet
        odt.mark_affected("*")
        assert not odt.fully_balanced(affected_only=True)
        odt.add_operation("/")
        assert odt.fully_balanced(affected_only=True)

    def test_imbalance_summary(self):
        odt = make_odt({"+": 5, "-": 2})
        summary = odt.imbalance_summary()
        assert summary[("+", "-")] == 3


class TestVectors:
    def test_vector_absolute_values(self):
        odt = make_odt({"+": 7, "-": 5, "<<": 1, ">>": 4})
        order = [("+", "-"), ("<<", ">>")]
        assert np.allclose(odt.vector(order), [2.0, 3.0])

    def test_optimal_vector_global(self):
        odt = make_odt({"+": 7, "-": 5})
        optimal = odt.optimal_vector(restricted=False)
        assert np.allclose(optimal, np.zeros(len(odt.pairs())))

    def test_optimal_vector_restricted_uses_nan_markers(self):
        odt = make_odt({"+": 7, "-": 5, "*": 2})
        odt.mark_affected("+")
        optimal = odt.optimal_vector(restricted=True)
        pair_order = odt.pairs()
        for position, (first, _second) in enumerate(pair_order):
            if first in ("+", "-"):
                assert optimal[position] == 0.0
            else:
                assert np.isnan(optimal[position])

    def test_copy_is_independent(self):
        odt = make_odt({"+": 3})
        clone = odt.copy()
        clone.add_operation("-")
        assert odt["+"] == 3
        assert clone["+"] == 2


class TestAlternativeTables:
    def test_custom_table(self):
        table = make_symmetric([("+", "-")], name="tiny")
        odt = OperationDistributionTable({"+": 4, "-": 1, "*": 7}, table)
        assert odt["+"] == 3
        assert len(odt.pairs()) == 1

    def test_asymmetric_table_still_supported(self):
        odt = OperationDistributionTable({"*": 2, "+": 5, "-": 1},
                                         ORIGINAL_ASSURE_TABLE)
        # With the original table '*' pairs with '+'.
        assert odt["*"] == 2 - 5
