"""Property-based tests for the security metrics (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locking.metrics import (
    metric_surface,
    modified_euclidean,
    security_metric,
)
from repro.locking.odt import OperationDistributionTable
from repro.locking.metrics import global_metric

_vectors = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8)


class TestModifiedEuclideanProperties:
    @given(_vectors)
    @settings(max_examples=100, deadline=None)
    def test_non_negative_and_zero_on_identity(self, vector):
        arr = [float(v) for v in vector]
        assert modified_euclidean(arr, arr) == 0.0
        assert modified_euclidean(arr, [0.0] * len(arr)) >= 0.0

    @given(_vectors)
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy_norm_without_exclusions(self, vector):
        arr = np.array(vector, dtype=float)
        assert modified_euclidean(arr, np.zeros_like(arr)) == \
            np.linalg.norm(arr)

    @given(_vectors, st.data())
    @settings(max_examples=100, deadline=None)
    def test_excluding_entries_never_increases_distance(self, vector, data):
        arr = np.array(vector, dtype=float)
        optimal = np.zeros_like(arr)
        mask_indices = data.draw(st.sets(
            st.integers(0, len(vector) - 1), max_size=len(vector)))
        masked = optimal.copy()
        for index in mask_indices:
            masked[index] = np.nan
        assert modified_euclidean(arr, masked) <= modified_euclidean(arr, optimal) + 1e-12


class TestSecurityMetricProperties:
    @given(_vectors, _vectors)
    @settings(max_examples=100, deadline=None)
    def test_bounded_between_0_and_100(self, initial, current):
        size = min(len(initial), len(current))
        value = security_metric([float(v) for v in initial[:size]],
                                [float(v) for v in current[:size]])
        assert 0.0 <= value <= 100.0

    @given(_vectors)
    @settings(max_examples=100, deadline=None)
    def test_initial_scores_zero_unless_already_optimal(self, initial):
        arr = [float(v) for v in initial]
        value = security_metric(arr, arr)
        if all(v == 0 for v in initial):
            assert value == 100.0
        else:
            assert value == 0.0

    @given(_vectors)
    @settings(max_examples=100, deadline=None)
    def test_optimal_scores_hundred(self, initial):
        arr = [float(v) for v in initial]
        assert security_metric(arr, [0.0] * len(arr)) == 100.0

    @given(st.integers(1, 30), st.integers(1, 30), st.data())
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_each_balancing_step(self, first, second, data):
        initial = [float(first), float(second)]
        step_first = data.draw(st.integers(0, first))
        step_second = data.draw(st.integers(0, second))
        partial = [float(first - step_first), float(second - step_second)]
        more_first = data.draw(st.integers(0, first - step_first))
        further = [float(first - step_first - more_first), partial[1]]
        assert security_metric(initial, further) >= \
            security_metric(initial, partial) - 1e-9


class TestGlobalMetricProperties:
    @given(st.dictionaries(st.sampled_from(["+", "-", "*", "/", "<<", ">>"]),
                           st.integers(0, 20), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_global_metric_monotone_under_balancing(self, census):
        odt = OperationDistributionTable(census)
        initial = odt.vector()
        previous = global_metric(odt, initial)
        # Repeatedly add a dummy of the under-represented type of the most
        # imbalanced pair; the global metric must never decrease.
        for _ in range(10):
            worst = max(odt.pairs(), key=lambda pair: abs(odt.value(pair[0])))
            if odt.value(worst[0]) == 0:
                break
            deficit_op = worst[1] if odt.value(worst[0]) > 0 else worst[0]
            odt.add_operation(deficit_op)
            current = global_metric(odt, initial)
            assert current >= previous - 1e-9
            previous = current


class TestSurfaceProperties:
    @given(st.integers(1, 20), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_surface_corners(self, first, second):
        surface = metric_surface([first, second])
        assert surface[0, 0] == 0.0
        assert surface[first, second] == 100.0
        assert surface.min() >= 0.0
        assert surface.max() <= 100.0
