"""Unit tests for the common locking step (Algorithm 1)."""

import pytest

from repro.locking import LockingError, LockingSession, lock_step, undo_step
from repro.rtlir import Design


@pytest.fixture
def imbalanced_session(rng):
    design = Design.from_verilog("""
    module imb (input [7:0] a, b, c, output [7:0] x, y);
      wire [7:0] t0 = a + b;
      wire [7:0] t1 = t0 + c;
      wire [7:0] t2 = t1 + a;
      wire [7:0] t3 = a - b;
      assign x = t2;
      assign y = t3;
    endmodule
    """)
    return LockingSession(design, rng=rng)


class TestPositiveImbalance:
    def test_excess_type_gets_dummy_partner(self, imbalanced_session):
        session = imbalanced_session
        assert session.odt["+"] == 2
        bits, actions = lock_step(session, "+", pair_mode=False)
        assert bits == 1
        assert len(actions) == 1
        assert actions[0].real_op == "+"
        assert actions[0].dummy_op == "-"
        assert session.odt["+"] == 1

    def test_repeated_steps_reach_balance(self, imbalanced_session):
        session = imbalanced_session
        total = 0
        while abs(session.odt["+"]) > 0:
            bits, _ = lock_step(session, "+")
            total += bits
        assert total == 2
        assert session.odt.is_balanced("+")


class TestNegativeImbalance:
    def test_deficit_type_added_as_dummy(self, imbalanced_session):
        session = imbalanced_session
        # '-' is the under-represented type (ODT[-] == -2): a '-' dummy must be
        # paired with an existing '+' operation.
        assert session.odt["-"] == -2
        bits, actions = lock_step(session, "-", pair_mode=False)
        assert bits == 1
        assert actions[0].real_op == "+"
        assert actions[0].dummy_op == "-"
        assert session.odt["-"] == -1


class TestPairMode:
    def test_pair_mode_locks_both_directions(self, imbalanced_session):
        session = imbalanced_session
        before = session.odt["+"]
        bits, actions = lock_step(session, "+", pair_mode=True)
        assert bits == 2
        assert len(actions) == 2
        # Balance is unchanged: one '+' dummy and one '-' dummy were added.
        assert session.odt["+"] == before

    def test_balanced_type_without_pair_mode_also_locks_both(self, rng):
        design = Design.from_verilog("""
        module bal (input [7:0] a, b, output [7:0] x, y);
          wire [7:0] t0 = a + b;
          wire [7:0] t1 = a - b;
          assign x = t0;
          assign y = t1;
        endmodule
        """)
        session = LockingSession(design, rng=rng)
        bits, _ = lock_step(session, "+", pair_mode=False)
        assert bits == 2
        assert session.odt.is_balanced("+")

    def test_missing_operations_return_zero(self, imbalanced_session):
        bits, actions = lock_step(imbalanced_session, "<<", pair_mode=True)
        assert bits == 0
        assert actions == []


class TestUndoStep:
    def test_undo_step_restores_everything(self, imbalanced_session):
        session = imbalanced_session
        design = session.design
        text_before = design.to_verilog()
        odt_before = session.odt["+"]
        bits, actions = lock_step(session, "+", pair_mode=True)
        assert bits == 2
        undo_step(session, actions)
        assert design.to_verilog() == text_before
        assert session.odt["+"] == odt_before
        assert design.key_width == 0

    def test_inconsistent_odt_detected(self, imbalanced_session):
        session = imbalanced_session
        # Corrupt the ODT so it claims an excess of '<<' with no such ops.
        session.odt.add_operation("<<", mark_affected=False)
        with pytest.raises(LockingError):
            lock_step(session, "<<", pair_mode=False)
