"""Integration tests: every example script runs end to end.

The examples are executed in-process (via runpy) with arguments scaled down
so the whole module stays fast; they must exit cleanly and print their key
output sections.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(capsys, monkeypatch, script: str, argv: list) -> str:
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 4

    def test_quickstart(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "quickstart.py",
                          ["--benchmark", "SASC", "--scale", "0.2",
                           "--rounds", "8", "--seed", "1"])
        assert "SnapShot attack on SASC" in out
        assert "ERA" in out and "ASSURE" in out
        assert "KPA" in out

    def test_lock_and_attack_demo_core(self, capsys, monkeypatch, tmp_path):
        output = tmp_path / "locked.v"
        out = run_example(capsys, monkeypatch, "lock_and_attack.py",
                          ["--algorithm", "era", "--rounds", "8",
                           "--output", str(output), "--seed", "2"])
        assert "Locked with era" in out
        assert "Correct key" in out
        assert output.exists()
        # The written artefact is valid Verilog with a key input.
        from repro.rtlir import Design
        locked = Design.from_verilog(output.read_text())
        assert locked.top.find_port("lock_key") is not None

    def test_lock_and_attack_with_user_file(self, capsys, monkeypatch, tmp_path):
        source = tmp_path / "user_core.v"
        source.write_text("""
        module user_core (input [7:0] a, b, output [7:0] y, z);
          wire [7:0] s = a + b;
          wire [7:0] t = s + a;
          wire [7:0] u = t * b;
          assign y = u - a;
          assign z = t ^ b;
        endmodule
        """)
        out = run_example(capsys, monkeypatch, "lock_and_attack.py",
                          ["--input", str(source), "--algorithm", "hra",
                           "--budget", "0.5", "--rounds", "6"])
        assert "Locked with hra" in out
        assert "SnapShot" in out

    def test_selection_study(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "selection_study.py",
                          ["--operations", "24", "--rounds", "5"])
        assert "Operation-selection study" in out
        assert "random-no-overlap" in out

    def test_metric_guided_design(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "metric_guided_design.py",
                          ["--plus-imbalance", "8", "--shift-imbalance", "3",
                           "--full-trajectory"])
        assert "M_g_sec surface" in out
        assert "Metric evolution" in out
        assert "ERA trajectory" in out.upper() or "era" in out

    def test_reproduce_figure6_reduced(self, capsys, monkeypatch):
        out = run_example(capsys, monkeypatch, "reproduce_figure6.py",
                          ["--benchmarks", "SASC", "--scale", "0.15",
                           "--samples", "1", "--rounds", "6"])
        assert "KPA (%) per benchmark" in out
        assert "Shape checks" in out
