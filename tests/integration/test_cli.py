"""Integration tests for the repro-lock command-line interface."""

import json

import pytest

from repro.cli import main
from repro.rtlir import Design

DESIGN_TEXT = """
module cli_core (
  input clk,
  input [7:0] a,
  input [7:0] b,
  input [7:0] c,
  output [7:0] y,
  output reg [7:0] q
);
  wire [7:0] t0 = a + b;
  wire [7:0] t1 = t0 + c;
  wire [7:0] t2 = t1 * a;
  wire [7:0] t3 = t2 - b;
  wire [7:0] t4 = t3 ^ c;
  wire [7:0] t5 = t4 << 1;
  assign y = t5 | a;
  always @(posedge clk) begin
    if (t0 > t1)
      q <= t2;
    else
      q <= t3;
  end
endmodule
"""


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "cli_core.v"
    path.write_text(DESIGN_TEXT)
    return path


class TestAnalyze:
    def test_analyze_prints_report(self, design_file, capsys):
        assert main(["analyze", str(design_file)]) == 0
        out = capsys.readouterr().out
        assert "Design report: cli_core" in out
        assert "Operation distribution table" in out

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["analyze", str(tmp_path / "nope.v")])


class TestLockAndAttack:
    def test_lock_writes_artifacts(self, design_file, tmp_path, capsys):
        output = tmp_path / "locked.v"
        key_file = tmp_path / "key.json"
        code = main(["lock", str(design_file), "-a", "era",
                     "--budget", "0.75", "-o", str(output),
                     "--key-file", str(key_file), "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Locked cli_core with era" in out
        assert output.exists() and key_file.exists()

        metadata = json.loads(key_file.read_text())
        assert metadata["key_width"] == len(metadata["bits"])
        locked = Design.from_verilog(output.read_text())
        port = locked.top.find_port(metadata["key_port"])
        assert port is not None
        assert port.width.width() == metadata["key_width"]

    def test_lock_with_absolute_key_bits(self, design_file, tmp_path, capsys):
        output = tmp_path / "locked.v"
        code = main(["lock", str(design_file), "-a", "assure",
                     "--key-bits", "3", "-o", str(output)])
        assert code == 0
        assert "3/3 key bits" in capsys.readouterr().out

    def test_attack_roundtrip(self, design_file, tmp_path, capsys):
        output = tmp_path / "locked.v"
        key_file = tmp_path / "key.json"
        main(["lock", str(design_file), "-a", "assure", "-o", str(output),
              "--key-file", str(key_file), "--seed", "2"])
        capsys.readouterr()

        code = main(["attack", str(output), "--key-file", str(key_file),
                     "--attack", "majority", "--rounds", "8", "--show-key",
                     "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "KPA" in out
        assert "Predicted key" in out

    def test_attack_without_key_file_fails(self, design_file, capsys):
        assert main(["attack", str(design_file)]) == 1
        assert "key-file" in capsys.readouterr().err


class TestBenchAndEvaluate:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "N_2046" in out and "MD5" in out

    def test_bench_emit_design(self, tmp_path, capsys):
        output = tmp_path / "fir.v"
        assert main(["bench", "FIR", "--scale", "0.2", "-o", str(output)]) == 0
        assert output.exists()
        design = Design.from_verilog(output.read_text())
        assert design.num_operations() > 0

    def test_bench_print_to_stdout(self, capsys):
        assert main(["bench", "N_1023", "--scale", "0.01"]) == 0
        assert "module N_1023" in capsys.readouterr().out

    def test_evaluate_small_run(self, tmp_path, capsys):
        report_file = tmp_path / "report.txt"
        code = main(["evaluate", "--benchmarks", "SASC",
                     "--algorithms", "assure", "era",
                     "--scale", "0.15", "--samples", "1", "--rounds", "5",
                     "--time-budget", "1.0", "-o", str(report_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Average KPA" in out
        assert report_file.exists()


class TestRegistryValidation:
    def test_unknown_lock_algorithm_rejected_at_parse_time(self, design_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["lock", str(design_file), "-a", "warlock"])
        assert excinfo.value.code == 2  # argparse usage error

    def test_unknown_attack_rejected_at_parse_time(self, design_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["attack", str(design_file), "--attack", "voodoo"])
        assert excinfo.value.code == 2

    def test_unknown_evaluate_algorithm_rejected_at_parse_time(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["evaluate", "--algorithms", "assure", "warlock"])
        assert excinfo.value.code == 2

    def test_help_lists_registered_names(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert "run" in parser.format_help()
        # The lock/attack subparser help enumerates the registered choices.
        sub = dict(parser._subparsers._group_actions[0].choices.items())
        lock_help = sub["lock"].format_help()
        assert "era" in lock_help and "assure-random" in lock_help
        assert "pair-asymmetry" in sub["attack"].format_help()

    def test_registry_addition_appears_in_choices(self):
        from repro.api import LOCKERS, register_locker
        from repro.cli import build_parser

        @register_locker("cli-test-locker")
        def factory(rng, pair_table=None, track_metrics=False, **_):
            raise NotImplementedError

        try:
            parser = build_parser()
            sub = dict(parser._subparsers._group_actions[0].choices.items())
            assert "cli-test-locker" in sub["lock"].format_help()
        finally:
            LOCKERS.unregister("cli-test-locker")


class TestRunScenario:
    EVAL_ARGS = ["--benchmarks", "SASC", "--algorithms", "assure", "era",
                 "--scale", "0.15", "--samples", "1", "--rounds", "4",
                 "--time-budget", "0.5", "--seed", "3"]

    @staticmethod
    def _records(store_dir):
        records = {}
        for path in sorted((store_dir / "jobs").glob("*.json")):
            record = json.loads(path.read_text())
            record.pop("elapsed_seconds", None)
            records[path.stem] = record
        return records

    def test_run_reproduces_evaluate_bit_identically(self, tmp_path, capsys):
        scenario_file = tmp_path / "scenario.json"
        eval_store = tmp_path / "eval_store"
        assert main(["evaluate", *self.EVAL_ARGS,
                     "--store", str(eval_store),
                     "--emit-scenario", str(scenario_file)]) == 0
        eval_out = capsys.readouterr().out
        assert "Average KPA" in eval_out

        serial_store = tmp_path / "serial_store"
        assert main(["run", str(scenario_file), "--store",
                     str(serial_store), "-q"]) == 0
        parallel_store = tmp_path / "parallel_store"
        assert main(["run", str(scenario_file), "--store",
                     str(parallel_store), "--jobs", "2", "-q"]) == 0
        capsys.readouterr()

        reference = self._records(eval_store)
        assert reference, "evaluate must write job records"
        assert self._records(serial_store) == reference
        assert self._records(parallel_store) == reference

    def test_rerun_executes_zero_jobs(self, tmp_path, capsys):
        store = tmp_path / "store"
        scenario_file = tmp_path / "scenario.json"
        assert main(["evaluate", *self.EVAL_ARGS,
                     "--emit-scenario", str(scenario_file)]) == 0
        capsys.readouterr()
        assert main(["run", str(scenario_file), "--store", str(store),
                     "-q"]) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 skipped" in first
        assert main(["run", str(scenario_file), "--store", str(store),
                     "-q"]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 skipped" in second
        manifest = json.loads((store / "manifest.json").read_text())
        assert manifest["total_records"] == 2

    def test_run_smoke_scenario_with_metrics(self, tmp_path, capsys):
        from pathlib import Path

        smoke = Path(__file__).resolve().parents[2] / "examples" / \
            "scenario_smoke.json"
        store = tmp_path / "smoke_store"
        assert main(["run", str(smoke), "--store", str(store),
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Average KPA" in out
        assert "Metrics recorded: avalanche, corruption" in out
        assert (store / "manifest.json").exists()

    def test_run_rejects_invalid_scenario(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "benchmarks": ["SASC"], '
                       '"lockers": ["warlock"], "attacks": ["snapshot"]}')
        assert main(["run", str(bad)]) == 1
        assert "unknown locking algorithm" in capsys.readouterr().err

    def test_run_rejects_missing_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestReport:
    """``repro-lock report <store>``: figures from disk, no re-simulation."""

    @staticmethod
    def _run_scenario(tmp_path, capsys, scenario_text, store_name):
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(scenario_text)
        store = tmp_path / store_name
        assert main(["run", str(scenario_file), "--store", str(store),
                     "-q"]) == 0
        capsys.readouterr()
        return store

    MATRIX_SCENARIO = json.dumps({
        "name": "report-matrix",
        "benchmarks": ["SASC"],
        "lockers": [{"algorithm": "era",
                     "key_budget_fractions": [0.25, 0.75]}],
        "attacks": [{"name": "snapshot", "rounds": 3,
                     "time_budgets": [0.5, 1.0]}],
        "samples": 1,
        "scale": 0.15,
        "seeds": [3, 5],
    })

    SINGLE_SCENARIO = json.dumps({
        "name": "report-single",
        "benchmarks": ["SASC"],
        "lockers": ["era"],
        "attacks": [{"name": "snapshot", "rounds": 3, "time_budget": 0.5}],
        "samples": 1,
        "scale": 0.15,
        "seed": 3,
    })

    def test_report_renders_matrix_store_without_rerunning(self, tmp_path,
                                                           capsys):
        store = self._run_scenario(tmp_path, capsys, self.MATRIX_SCENARIO,
                                   "matrix_store")
        jobs_before = {path: path.stat().st_mtime_ns
                       for path in (store / "jobs").glob("*.json")}
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Records: 8/8 (COMPLETE)" in out
        assert "Mean KPA (%) per seed" in out
        assert "Mean KPA (%) per key_budget_fraction" in out
        assert "Mean KPA (%) per time_budget" in out
        assert "Wall time vs. scheduler cost estimate" in out
        # Nothing was re-simulated: no record file was touched.
        assert {path: path.stat().st_mtime_ns
                for path in (store / "jobs").glob("*.json")} == jobs_before

    def test_report_single_value_store_has_no_sweep_tables(self, tmp_path,
                                                           capsys):
        store = self._run_scenario(tmp_path, capsys, self.SINGLE_SCENARIO,
                                   "single_store")
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Average KPA" in out
        assert "scenario matrix axis" not in out

    def test_report_degrades_gracefully_on_partial_store(self, tmp_path,
                                                         capsys):
        """A store whose run was interrupted (missing record, no manifest)
        still reports over what it has, flagged as PARTIAL."""
        store = self._run_scenario(tmp_path, capsys, self.MATRIX_SCENARIO,
                                   "partial_store")
        records = sorted((store / "jobs").glob("*.json"))
        records[0].unlink()
        (store / "manifest.json").unlink()
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Records: 7/8 (PARTIAL" in out
        assert "no manifest" in out
        assert "Average KPA" in out

    def test_report_writes_output_file(self, tmp_path, capsys):
        store = self._run_scenario(tmp_path, capsys, self.SINGLE_SCENARIO,
                                   "out_store")
        output = tmp_path / "report.txt"
        assert main(["report", str(store), "-o", str(output)]) == 0
        capsys.readouterr()
        assert "Average KPA" in output.read_text()

    def test_report_on_missing_store_fails_clearly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_report_on_non_store_directory_fails_clearly(self, tmp_path,
                                                         capsys):
        (tmp_path / "not_a_store").mkdir()
        assert main(["report", str(tmp_path / "not_a_store")]) == 1
        assert "not a results store" in capsys.readouterr().err


class TestReportJson:
    """``repro-lock report --json``: machine-readable Fig. 6 + sweep data."""

    def test_json_round_trips_the_store_aggregates(self, tmp_path, capsys):
        store = TestReport._run_scenario(tmp_path, capsys,
                                         TestReport.MATRIX_SCENARIO,
                                         "json_store")
        json_path = tmp_path / "report.json"
        assert main(["report", str(store), "--json", str(json_path)]) == 0
        capsys.readouterr()
        payload = json.loads(json_path.read_text())

        # Round trip: the JSON numbers equal the figure builders' output.
        from repro.api import ResultsStore
        from repro.eval import axis_sweeps_from_store, figure6_from_store

        fig6 = figure6_from_store(ResultsStore(store))
        assert payload["figure6"]["average"] == fig6.average
        assert payload["figure6"]["per_benchmark"] == fig6.per_benchmark

        sweeps = {s.axis: s for s in axis_sweeps_from_store(
            ResultsStore(store))}
        assert {entry["axis"] for entry in payload["axis_sweeps"]} \
            == set(sweeps)
        for entry in payload["axis_sweeps"]:
            sweep = sweeps[entry["axis"]]
            assert [row["value"] for row in entry["rows"]] == sweep.values
            for row in entry["rows"]:
                assert row["kpa"] == sweep.kpa[row["value"]]
                assert row["ci95"] == sweep.kpa_ci[row["value"]]
                assert row["counts"] == sweep.counts[row["value"]]

        # Scenario identity and completion survive the round trip too.
        assert payload["completion"]["complete"] is True
        from repro.api import Scenario

        restored = Scenario.from_dict(payload["scenario"], validate=False)
        assert restored.fingerprint() == payload["scenario_fingerprint"]
        assert payload["timing"], "manifest timing pairs missing"
        for entry in payload["benchmark_axis_sweeps"]:
            assert entry["benchmark"] == "SASC"

    def test_json_on_partial_store_degrades_gracefully(self, tmp_path,
                                                       capsys):
        store = TestReport._run_scenario(tmp_path, capsys,
                                         TestReport.SINGLE_SCENARIO,
                                         "json_partial")
        (store / "manifest.json").unlink()
        json_path = tmp_path / "partial.json"
        assert main(["report", str(store), "--json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["timing"] == []
        assert payload["figure6"]["average"]
        assert payload["axis_sweeps"] == []


class TestDryRun:
    """``repro-lock run --dry-run``: job plan + calibrated wall-time ETA."""

    def test_dry_run_executes_nothing(self, tmp_path, capsys):
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(TestReport.SINGLE_SCENARIO)
        store = tmp_path / "dry_store"
        assert main(["run", str(scenario_file), "--store", str(store),
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "Dry run — nothing was executed" in out
        assert "1 to execute" in out
        assert "No calibration data" in out
        assert not store.exists()

    def test_dry_run_eta_calibrates_from_the_stores_manifest(self, tmp_path,
                                                             capsys):
        store = TestReport._run_scenario(tmp_path, capsys,
                                         TestReport.SINGLE_SCENARIO,
                                         "eta_store")
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(TestReport.SINGLE_SCENARIO)
        assert main(["run", str(scenario_file), "--store", str(store),
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "0 to execute" in out
        assert "Cost model:" in out
        assert "ms/unit" in out

    def test_dry_run_calibrates_from_a_foreign_manifest(self, tmp_path,
                                                        capsys):
        store = TestReport._run_scenario(tmp_path, capsys,
                                         TestReport.SINGLE_SCENARIO,
                                         "calib_store")
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(TestReport.SINGLE_SCENARIO)
        fresh = tmp_path / "fresh_store"
        assert main(["run", str(scenario_file), "--store", str(fresh),
                     "--dry-run", "--calibrate-from",
                     str(store / "manifest.json")]) == 0
        out = capsys.readouterr().out
        assert "1 to execute" in out
        assert "Cost model:" in out
        assert "ETA (s)" in out

    def test_dry_run_rejects_unreadable_calibration_source(self, tmp_path,
                                                           capsys):
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(TestReport.SINGLE_SCENARIO)
        assert main(["run", str(scenario_file), "--store",
                     str(tmp_path / "s"), "--dry-run", "--calibrate-from",
                     str(tmp_path / "absent.json")]) == 1
        assert "cannot calibrate" in capsys.readouterr().err

    def test_dry_run_rejects_a_foreign_scenarios_store(self, tmp_path,
                                                       capsys):
        """Same identity check as the real run: a plan computed against
        another scenario's store would be fiction."""
        store = TestReport._run_scenario(tmp_path, capsys,
                                         TestReport.SINGLE_SCENARIO,
                                         "foreign_store")
        other = tmp_path / "other.json"
        other.write_text(TestReport.MATRIX_SCENARIO)
        assert main(["run", str(other), "--store", str(store),
                     "--dry-run"]) == 1
        assert "different scenario" in capsys.readouterr().err

    def test_dry_run_rejects_non_object_calibration_json(self, tmp_path,
                                                         capsys):
        scenario_file = tmp_path / "scenario.json"
        scenario_file.write_text(TestReport.SINGLE_SCENARIO)
        bogus = tmp_path / "records.json"
        bogus.write_text("[1, 2, 3]")
        assert main(["run", str(scenario_file), "--store",
                     str(tmp_path / "s"), "--dry-run", "--calibrate-from",
                     str(bogus)]) == 1
        assert "cannot calibrate" in capsys.readouterr().err


class TestSimBench:
    def test_suite_reports_engines_and_sweeps(self, capsys):
        code = main(["sim-bench", "--vectors", "16", "--keys", "8",
                     "--scale", "0.1", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scalar [ms]" in out
        assert "sweep [ms]" in out
        assert "NO" not in out

    def test_json_report_written(self, tmp_path, capsys):
        json_path = tmp_path / "BENCH_sim.json"
        code = main(["sim-bench", "--vectors", "16", "--keys", "8",
                     "--scale", "0.1", "--repeats", "1",
                     "--vn-vectors", "64", "--json", str(json_path)])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert {"engines", "key_sweeps", "sweep_vn",
                "pipelined_sweep"} == set(payload)
        assert payload["engines"], "engine comparisons missing"
        assert payload["key_sweeps"], "key-sweep comparisons missing"
        assert payload["sweep_vn"], "sweep-VN comparisons missing"
        assert payload["pipelined_sweep"], "pipelined comparisons missing"
        for entry in payload["engines"]:
            assert entry["outputs_match"] is True
            assert entry["speedup"] > 0
        for entry in payload["key_sweeps"]:
            assert entry["outputs_match"] is True
            assert {"cse_steps", "pruned_steps"} <= set(entry)
        for entry in payload["sweep_vn"]:
            assert entry["outputs_match"] is True
            assert {"invariant_steps", "total_steps",
                    "hoisted_subexprs"} <= set(entry)
        designs = {entry["design"] for entry in payload["sweep_vn"]}
        assert designs == {"i2c_sl_era", "md5_scaled_era"}
        for entry in payload["pipelined_sweep"]:
            assert entry["outputs_match"] is True
            assert {"max_lanes", "tiles", "throughput_ratio",
                    "memory_ratio", "chunked_peak_bytes",
                    "unchunked_peak_bytes"} <= set(entry)

    def test_avalanche_flag_reports_sensitivity(self, capsys):
        code = main(["sim-bench", "--vectors", "8", "--keys", "4",
                     "--scale", "0.1", "--repeats", "1", "--avalanche"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Avalanche sensitivity" in out
        assert "probed input" in out

    def test_single_design_sweep_needs_key_metadata(self, design_file,
                                                    tmp_path, capsys):
        locked = tmp_path / "locked.v"
        key_file = tmp_path / "key.json"
        assert main(["lock", str(design_file), "-a", "assure",
                     "--key-bits", "4", "-o", str(locked),
                     "--key-file", str(key_file)]) == 0
        capsys.readouterr()
        # A bare Verilog file has no key metadata: engines table only.
        assert main(["sim-bench", str(locked), "--vectors", "8",
                     "--keys", "4", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "scalar [ms]" in out
        assert "sweep [ms]" not in out
        # With --key-file the locked design gets a key-sweep comparison.
        assert main(["sim-bench", str(locked), "--key-file", str(key_file),
                     "--vectors", "8", "--keys", "4", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "sweep [ms]" in out
        assert "NO" not in out


SERVICE_SCENARIO = json.dumps({
    "name": "cli-svc",
    "benchmarks": ["SASC"],
    "lockers": [{"algorithm": "era", "key_budget_fraction": 0.75}],
    "attacks": [{"name": "snapshot", "rounds": 4, "time_budget": 0.5}],
    "samples": 1,
    "scale": 0.15,
    "seed": 3,
})


class TestServiceCommands:
    """`submit`/`status`/`watch`/`report --remote` against a live server."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.api.server import ScenarioServer

        instance = ScenarioServer(runs_root=tmp_path / "runs")
        instance.start()
        yield instance
        instance.stop()

    @pytest.fixture
    def scenario_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(SERVICE_SCENARIO)
        return path

    def test_submit_watch_roundtrip(self, server, scenario_file, capsys):
        code = main(["submit", str(scenario_file),
                     "--socket", server.address, "--watch"])
        assert code == 0
        out = capsys.readouterr().out
        assert "job-0001: queued" in out
        assert "done — 1 executed" in out

    def test_resubmission_is_deduplicated(self, server, scenario_file,
                                          capsys):
        assert main(["submit", str(scenario_file),
                     "--socket", server.address, "--watch", "-q"]) == 0
        capsys.readouterr()
        assert main(["submit", str(scenario_file),
                     "--socket", server.address]) == 0
        assert "already known" in capsys.readouterr().out

    def test_status_summary_and_job(self, server, scenario_file, capsys):
        assert main(["submit", str(scenario_file),
                     "--socket", server.address, "--watch", "-q"]) == 0
        capsys.readouterr()
        assert main(["status", "--socket", server.address]) == 0
        out = capsys.readouterr().out
        assert "plan cache:" in out
        assert "done=1" in out
        assert main(["status", "job-0001", "--socket", server.address]) == 0
        assert "done" in capsys.readouterr().out

    def test_watch_finished_job(self, server, scenario_file, capsys):
        assert main(["submit", str(scenario_file),
                     "--socket", server.address, "--watch", "-q"]) == 0
        capsys.readouterr()
        assert main(["watch", "job-0001", "--socket", server.address]) == 0
        out = capsys.readouterr().out
        assert "[1/1]" in out  # replayed history
        assert "done" in out

    def test_report_remote_by_job_and_store(self, server, scenario_file,
                                            tmp_path, capsys):
        assert main(["submit", str(scenario_file),
                     "--socket", server.address, "--watch", "-q"]) == 0
        capsys.readouterr()
        json_out = tmp_path / "report.json"
        assert main(["report", "job-0001", "--remote", server.address,
                     "--json", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "cli-svc" in out
        assert json.loads(json_out.read_text())
        from repro.api import Scenario

        fingerprint = Scenario.from_dict(
            json.loads(SERVICE_SCENARIO)).fingerprint()
        store = str(server.runs_root / f"cli-svc-{fingerprint}")
        assert main(["report", store, "--remote", server.address]) == 0
        assert "cli-svc" in capsys.readouterr().out

    def test_submit_without_server_fails_cleanly(self, tmp_path,
                                                 scenario_file, capsys):
        code = main(["submit", str(scenario_file),
                     "--socket", str(tmp_path / "absent.sock")])
        assert code == 1
        assert "no scenario server" in capsys.readouterr().err

    def test_invalid_scenario_surfaces_code_and_cause(self, server, tmp_path,
                                                      capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "bad"}')
        code = main(["submit", str(bad), "--socket", server.address])
        assert code == 1
        err = capsys.readouterr().err
        assert "INVALID_SCENARIO" in err
        assert "at least one benchmark" in err

    def test_unknown_job_errors(self, server, capsys):
        assert main(["status", "job-9999",
                     "--socket", server.address]) == 1
        assert "UNKNOWN_JOB" in capsys.readouterr().err


class TestServeCommand:
    """`cli serve` as a real daemon process (the CI service job's shape)."""

    def test_serve_submit_sigterm_roundtrip(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time as time_module

        from repro.api.client import ScenarioClient

        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(SERVICE_SCENARIO)
        runs_root = tmp_path / "runs"
        ready_file = tmp_path / "ready.json"

        src_root = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src"))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--runs-root", str(runs_root), "--ready-file", str(ready_file)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            deadline = time_module.time() + 60.0
            while time_module.time() < deadline and not ready_file.exists():
                assert process.poll() is None, process.communicate()[1]
                time_module.sleep(0.05)
            address = json.loads(ready_file.read_text())["address"]
            with ScenarioClient(address) as client:
                submitted = client.submit(scenario_path)
                final = client.wait(submitted["job_id"])
                assert final["state"] == "done"
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
