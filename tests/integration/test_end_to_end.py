"""End-to-end integration tests across the whole stack.

These tests exercise the full pipeline the paper describes: generate or parse
a design, lock it with each algorithm, verify the locked Verilog is valid and
carries the expected structure, attack it, and check the headline security
behaviour.
"""

import random

import pytest

from repro.attacks import LocalityExtractor, SnapShotAttack, kpa
from repro.bench import load_benchmark
from repro.eval import ExperimentConfig, SnapShotExperiment, experiment_report
from repro.locking import AssureLocker, ERALocker, HRALocker, odt_from_design
from repro.ml import CategoricalNB
from repro.rtlir import Design
from repro.verilog.parser import parse


class TestLockedDesignsAreValidVerilog:
    @pytest.mark.parametrize("algorithm", ["assure", "hra", "era"])
    def test_locked_benchmark_reparses_and_preserves_key_structure(self, algorithm):
        design = load_benchmark("SASC", scale=0.4, seed=0)
        budget = int(0.75 * design.num_operations())
        rng = random.Random(1)
        locker = {"assure": AssureLocker("serial", rng=rng),
                  "hra": HRALocker(rng=rng),
                  "era": ERALocker(rng=rng)}[algorithm]
        locked = locker.lock(design, key_budget=budget).design

        text = locked.to_verilog()
        reparsed = Design.from_verilog(text, name="reparsed")
        # The key port is a real input of the regenerated module.
        port = reparsed.top.find_port(locked.key_port)
        assert port is not None and port.direction == "input"
        assert port.width.width() == locked.key_width
        # The regenerated design contains the same operations (the attacker's
        # view is identical after a re-parse).
        assert reparsed.operation_census() == locked.operation_census()

    def test_key_bit_indices_match_port_width(self):
        design = load_benchmark("I2C_SL", scale=0.5, seed=0)
        locked = ERALocker(rng=random.Random(0)).lock(design, 10).design
        indices = [bit.index for bit in locked.key_bits]
        assert indices == list(range(locked.key_width))


class TestHeadlineSecurityClaim:
    """ERA resists the ML attack; plain ASSURE does not (Fig. 6 shape)."""

    def test_assure_leaks_and_era_resists_on_imbalanced_benchmark(self):
        design = load_benchmark("N_2046", scale=0.03)  # 61-op +-network
        budget = int(0.75 * design.num_operations())
        attack = SnapShotAttack(model=CategoricalNB(), rounds=15,
                                rng=random.Random(5))

        assure_target = AssureLocker("serial", rng=random.Random(0)).lock(
            design, budget).design
        assure_kpa = attack.attack(assure_target, algorithm="assure").kpa

        era_kpas = []
        for seed in range(3):
            era_target = ERALocker(rng=random.Random(seed)).lock(
                design, design.num_operations()).design
            era_kpas.append(attack.attack(era_target, algorithm="era").kpa)

        assert assure_kpa >= 90.0
        # ERA keeps the attack at chance level *on average* (single samples of
        # a one-pair design are bimodal, see DESIGN.md).
        assert sum(era_kpas) / len(era_kpas) <= assure_kpa - 20.0

    def test_era_balances_realistic_benchmark_and_blunts_attack(self):
        design = load_benchmark("MD5", scale=0.25, seed=2)
        budget = int(0.75 * design.num_operations())
        attack = SnapShotAttack(model=CategoricalNB(), rounds=15,
                                rng=random.Random(3))

        assure_locked = AssureLocker("serial", rng=random.Random(1)).lock(
            design, budget)
        era_locked = ERALocker(rng=random.Random(1)).lock(design, budget)

        assure_kpa = attack.attack(assure_locked.design, algorithm="assure").kpa
        era_kpa = attack.attack(era_locked.design, algorithm="era").kpa

        assert assure_kpa > era_kpa
        assert era_kpa < 70.0
        # ERA's structural guarantee on the locked artefact itself.
        odt = odt_from_design(era_locked.design)
        affected = {bit.real_op for bit in era_locked.design.key_bits}
        for op in affected:
            assert odt.value(op) == 0


class TestExperimentPipeline:
    def test_tiny_experiment_produces_full_report(self):
        config = ExperimentConfig(
            benchmarks=["USB_PHY", "N_1023"],
            algorithms=("assure", "era"),
            scale=0.1,
            n_test_lockings=1,
            relock_rounds=6,
            automl_time_budget=1.5,
            seed=11,
        )
        result = SnapShotExperiment(config).run()
        table = result.kpa_table()
        assert set(table) == {"USB_PHY", "N_1023"}
        report = experiment_report(result)
        assert "Average KPA" in report

    def test_localities_consistent_between_defender_and_attacker_views(self):
        # The labels the defender stores must equal what the extractor reads
        # back from the Verilog artefact (no hidden state).
        design = load_benchmark("FIR", scale=0.2, seed=4)
        locked = HRALocker(rng=random.Random(2)).lock(design, 12).design
        reparsed = Design.from_verilog(locked.to_verilog())
        reparsed.key_port = locked.key_port
        reparsed.key_bits = [bit for bit in locked.key_bits]
        original_features, _ = LocalityExtractor().extract_matrix(locked)
        reparsed_features, _ = LocalityExtractor().extract_matrix(reparsed)
        assert (original_features == reparsed_features).all()
