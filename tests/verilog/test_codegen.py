"""Unit tests for the Verilog code generator (round-trip oriented)."""

import pytest

from repro.verilog import ast
from repro.verilog.codegen import CodeGenerator, generate
from repro.verilog.errors import CodegenError
from repro.verilog.parser import parse, parse_expression, parse_module

from ..conftest import MIXER_SOURCE, PLUS_CHAIN_SOURCE


def roundtrip(source: str) -> str:
    """Parse -> generate -> parse -> generate; return the stable text."""
    first = generate(parse(source))
    second = generate(parse(first))
    assert first == second, "code generation is not a fixed point"
    return first


class TestExpressionRendering:
    @pytest.mark.parametrize("text,expected", [
        ("a + b", "(a + b)"),
        ("a + b * c", "(a + (b * c))"),
        ("k ? a : b", "(k ? a : b)"),
        ("~a", "(~a)"),
        ("{a, b}", "{a, b}"),
        ("{3{x}}", "{3{x}}"),
        ("mem[2]", "mem[2]"),
        ("bus[7:0]", "bus[7:0]"),
        ("bus[p +: 8]", "bus[p+:8]"),
        ("f(a, b)", "f(a, b)"),
    ])
    def test_expression_forms(self, text, expected):
        assert generate(parse_expression(text)) == expected

    def test_string_constant(self):
        gen = CodeGenerator()
        assert gen.expression(ast.StringConst("hi")) == '"hi"'

    def test_unknown_expression_type_raises(self):
        class Strange(ast.Expression):
            pass

        with pytest.raises(CodegenError):
            generate(Strange())


class TestModuleRendering:
    def test_mixer_roundtrip(self):
        text = roundtrip(MIXER_SOURCE)
        assert "module mixer" in text
        assert "always @(posedge clk or negedge rst_n)" in text

    def test_plus_chain_roundtrip(self):
        text = roundtrip(PLUS_CHAIN_SOURCE)
        assert text.count("+") == 6

    def test_parameters_rendered(self):
        text = roundtrip("module m #(parameter W = 8) (input [W-1:0] a); endmodule")
        assert "parameter W = 8" in text

    def test_case_statement_roundtrip(self):
        source = """
        module m (input [1:0] s, output reg [1:0] y);
          always @(*) begin
            casez (s)
              2'b0?: y = 2'b00;
              default: y = s;
            endcase
          end
        endmodule
        """
        text = roundtrip(source)
        assert "casez" in text
        assert "default:" in text

    def test_instance_roundtrip(self):
        source = """
        module top (input a, output y);
          leaf #(.P(3)) u0 (.x(a), .z(y));
        endmodule
        """
        text = roundtrip(source)
        assert "leaf #(.P(3)) u0 (.x(a), .z(y));" in text

    def test_function_roundtrip(self):
        source = """
        module m (input [7:0] a, output [7:0] y);
          function [7:0] inc;
            input [7:0] v;
            inc = v + 1;
          endfunction
          assign y = inc(a);
        endmodule
        """
        text = roundtrip(source)
        assert "function [7:0] inc;" in text
        assert "endfunction" in text

    def test_for_loop_roundtrip(self):
        source = """
        module m (input [7:0] a, output reg p);
          integer i;
          always @(*) begin
            p = 0;
            for (i = 0; i < 8; i = i + 1)
              p = p ^ a[i];
          end
        endmodule
        """
        text = roundtrip(source)
        assert "for (i = 0; (i < 8); i = (i + 1))" in text

    def test_memory_declaration_roundtrip(self):
        text = roundtrip("module m (); reg [7:0] mem [0:15]; endmodule")
        assert "reg [7:0] mem [0:15];" in text

    def test_initial_block_roundtrip(self):
        text = roundtrip('module m (); initial $display("x"); endmodule')
        assert "initial" in text

    def test_generate_whole_source(self):
        source = parse("module a (); endmodule module b (); endmodule")
        text = generate(source)
        assert text.count("endmodule") == 2

    def test_ternary_structure_preserved(self, mixer_design):
        # Locking relies on ternaries surviving the round trip untouched.
        source = "module m (input k, input [3:0] a, b, output [3:0] y);" \
                 " assign y = k ? (a + b) : (a - b); endmodule"
        module = parse_module(roundtrip(source))
        assign = module.items[0]
        assert isinstance(assign.rhs, ast.TernaryOp)
        assert assign.rhs.true_value.op == "+"
        assert assign.rhs.false_value.op == "-"


class TestDeterminism:
    def test_generation_is_deterministic(self):
        first = generate(parse(MIXER_SOURCE))
        second = generate(parse(MIXER_SOURCE))
        assert first == second
