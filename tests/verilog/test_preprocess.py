"""Unit tests for the minimal Verilog preprocessor."""

import pytest

from repro.verilog.parser import parse_module
from repro.verilog.preprocess import Preprocessor, PreprocessorError, preprocess


class TestDefines:
    def test_simple_define_expansion(self):
        text = "`define WIDTH 8\nwire [`WIDTH-1:0] x;\n"
        assert "wire [8-1:0] x;" in preprocess(text)

    def test_chained_defines(self):
        text = "`define A 4\n`define B `A\nwire [`B:0] x;\n"
        assert "wire [4:0] x;" in preprocess(text)

    def test_undef(self):
        text = "`define A 1\n`undef A\nwire x = `A;\n"
        # After undef the macro use stays verbatim (flagged later by the lexer
        # if it matters); the preprocessor must not crash.
        assert "`A" in preprocess(text)

    def test_define_with_comment_in_body(self):
        text = "`define W 16 // bus width\nwire [`W-1:0] d;\n"
        assert "wire [16-1:0] d;" in preprocess(text)

    def test_function_like_macro_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("`define MAX(a,b) ((a)>(b)?(a):(b))\n")

    def test_recursive_define_detected(self):
        with pytest.raises(PreprocessorError):
            preprocess("`define X `Y\n`define Y `X\nwire w = `X;\n")

    def test_predefined_macros(self):
        pre = Preprocessor(defines={"WIDTH": "32"})
        assert "wire [32-1:0] x;" in pre.process("wire [`WIDTH-1:0] x;\n")


class TestConditionals:
    def test_ifdef_taken(self):
        text = "`define FAST 1\n`ifdef FAST\nwire f;\n`else\nwire s;\n`endif\n"
        result = preprocess(text)
        assert "wire f;" in result
        assert "wire s;" not in result

    def test_ifdef_not_taken(self):
        text = "`ifdef MISSING\nwire f;\n`else\nwire s;\n`endif\n"
        result = preprocess(text)
        assert "wire s;" in result
        assert "wire f;" not in result

    def test_ifndef(self):
        text = "`ifndef MISSING\nwire present;\n`endif\n"
        assert "wire present;" in preprocess(text)

    def test_nested_conditionals(self):
        text = ("`define A 1\n"
                "`ifdef A\n"
                "`ifdef B\nwire both;\n`else\nwire only_a;\n`endif\n"
                "`endif\n")
        result = preprocess(text)
        assert "wire only_a;" in result
        assert "wire both;" not in result

    def test_unterminated_ifdef_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("`ifdef X\nwire w;\n")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("`endif\n")


class TestIncludesAndDirectives:
    def test_include_resolution(self, tmp_path):
        header = tmp_path / "defs.vh"
        header.write_text("`define DATA_W 12\n")
        main = tmp_path / "top.v"
        main.write_text('`include "defs.vh"\nmodule m (input [`DATA_W-1:0] d); endmodule\n')
        pre = Preprocessor()
        processed = pre.process_file(main)
        assert "[12-1:0]" in processed
        module = parse_module(processed)
        assert module.find_port("d").direction == "input"

    def test_missing_include_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess('`include "nowhere.vh"\n')

    def test_other_directives_dropped(self):
        text = "`timescale 1ns/1ps\n`default_nettype none\nwire x;\n"
        result = preprocess(text)
        assert "timescale" not in result
        assert "wire x;" in result


class TestIntegrationWithParser:
    def test_preprocessed_module_parses(self):
        text = """
`define W 8
`ifdef SYNTHESIS
`else
module scaled (input [`W-1:0] a, output [`W-1:0] y);
  assign y = a + `W'd1;
endmodule
`endif
"""
        module = parse_module(preprocess(text))
        assert module.name == "scaled"
