"""Unit tests for the Verilog lexer."""

import pytest

from repro.verilog.errors import LexerError
from repro.verilog.lexer import Lexer, tokenize
from repro.verilog.tokens import Token, TokenType


def kinds(text):
    return [t.type for t in tokenize(text) if t.type is not TokenType.EOF]


def values(text):
    return [t.value for t in tokenize(text) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_classified(self):
        tokens = tokenize("module endmodule assign always begin end")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        assert kinds("foo _bar baz123 $display") == [TokenType.IDENTIFIER] * 4

    def test_escaped_identifier(self):
        tokens = tokenize(r"\my-net+1 other")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "my-net+1"
        assert tokens[1].value == "other"

    def test_plain_numbers(self):
        assert kinds("42 1_000") == [TokenType.NUMBER, TokenType.NUMBER]

    def test_based_numbers(self):
        tokens = tokenize("4'b1010 8'hFF 'd15 12'o777 4'sb1010")
        assert all(t.type is TokenType.BASED_NUMBER for t in tokens[:-1])

    def test_based_number_with_space_between_size_and_base(self):
        tokens = tokenize("4 'b1010")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[1].type is TokenType.BASED_NUMBER

    def test_real_literal(self):
        tokens = tokenize("3.14")
        assert tokens[0].type is TokenType.REAL

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_punctuation(self):
        expected = [TokenType.LPAREN, TokenType.RPAREN, TokenType.LBRACKET,
                    TokenType.RBRACKET, TokenType.LBRACE, TokenType.RBRACE,
                    TokenType.SEMICOLON, TokenType.COLON, TokenType.COMMA,
                    TokenType.DOT, TokenType.AT, TokenType.HASH,
                    TokenType.QUESTION]
        assert kinds("( ) [ ] { } ; : , . @ # ?") == expected


class TestOperators:
    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%", "<", ">", "!", "~",
                                    "&", "|", "^", "="])
    def test_single_char_operators(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].type is TokenType.OPERATOR
        assert tokens[1].value == op

    @pytest.mark.parametrize("op", ["<<", ">>", "<<<", ">>>", "<=", ">=", "==",
                                    "!=", "===", "!==", "&&", "||", "**", "~&",
                                    "~|", "~^", "^~"])
    def test_multi_char_operators(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].type is TokenType.OPERATOR
        assert tokens[1].value == op

    def test_maximal_munch(self):
        # "<<<" must not tokenize as "<<" then "<".
        assert values("a <<< 2")[1] == "<<<"


class TestIgnorables:
    def test_line_comment(self):
        assert values("a // comment with ; tokens\n+ b") == ["a", "+", "b"]

    def test_block_comment(self):
        assert values("a /* multi\nline */ + b") == ["a", "+", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_compiler_directive_skipped(self):
        assert values("`timescale 1ns/1ps\nwire x;") == ["wire", "x", ";"]

    def test_attribute_instance_skipped(self):
        assert values("(* keep = 1 *) wire x;") == ["wire", "x", ";"]

    def test_whitespace_only(self):
        tokens = tokenize("   \n\t  ")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("wire x;\n  assign y = x;")
        assign = [t for t in tokens if t.value == "assign"][0]
        assert assign.line == 2
        assert assign.column == 3

    def test_error_reports_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize('wire x;\nwire "unterminated')
        assert excinfo.value.line == 2


class TestTokenHelpers:
    def test_is_keyword_and_is_operator(self):
        token = Token(TokenType.KEYWORD, "module", 1, 1)
        assert token.is_keyword("module")
        assert not token.is_keyword("wire")
        op = Token(TokenType.OPERATOR, "+", 1, 1)
        assert op.is_operator("+")
        assert not op.is_operator("-")

    def test_eof_always_last(self):
        tokens = tokenize("a + b")
        assert tokens[-1].type is TokenType.EOF
