"""Unit tests for the structural transformation helpers."""

import pytest

from repro.verilog import ast
from repro.verilog.codegen import generate
from repro.verilog.errors import TransformError
from repro.verilog.parser import parse, parse_module
from repro.verilog.transform import (
    add_port,
    add_wire,
    binary_operations,
    clone,
    declared_names,
    key_bit_expression,
    replace_expression,
    ternary_operations,
    unique_name,
)

from ..conftest import MIXER_SOURCE


class TestClone:
    def test_clone_is_deep(self):
        module = parse_module(MIXER_SOURCE)
        copy = clone(module)
        assert copy is not module
        copy.items[0].names[0] = "renamed"
        assert module.items[0].names[0] != "renamed"


class TestPortsAndWires:
    def test_add_port_scalar_and_vector(self):
        module = parse_module("module m (input a); endmodule")
        add_port(module, "key", "input", width=4)
        add_port(module, "flag", "output")
        assert module.port_names() == ["a", "key", "flag"]
        assert module.find_port("key").width.width() == 4
        assert module.find_port("flag").width is None
        text = generate(module)
        assert "input [3:0] key" in text

    def test_add_duplicate_port_raises(self):
        module = parse_module("module m (input a); endmodule")
        with pytest.raises(TransformError):
            add_port(module, "a", "input")

    def test_add_wire_inserted_after_declarations(self):
        module = parse_module(MIXER_SOURCE)
        add_wire(module, "new_sig", width=8)
        decl_index = next(i for i, item in enumerate(module.items)
                          if isinstance(item, ast.NetDeclaration)
                          and "new_sig" in item.names)
        always_index = next(i for i, item in enumerate(module.items)
                            if isinstance(item, ast.AlwaysBlock))
        assert decl_index < always_index

    def test_declared_names_and_unique_name(self):
        module = parse_module(MIXER_SOURCE)
        names = declared_names(module)
        assert "t1" in names and "clk" in names
        assert unique_name(module, "t1") != "t1"
        assert unique_name(module, "fresh") == "fresh"


class TestExpressions:
    def test_key_bit_expression_forms(self):
        scalar = key_bit_expression("k", 0, key_width=1)
        assert isinstance(scalar, ast.Identifier)
        vector = key_bit_expression("k", 3, key_width=8)
        assert isinstance(vector, ast.BitSelect)
        assert generate(vector) == "k[3]"

    def test_replace_expression(self):
        module = parse_module(MIXER_SOURCE)
        target = binary_operations(module, ops=["*"])[0]
        replacement = ast.TernaryOp(ast.Identifier("k"),
                                    clone(target),
                                    ast.BinaryOp("/", clone(target.left),
                                                 clone(target.right)))
        replace_expression(module, target, replacement)
        assert len(ternary_operations(module)) == 1
        assert "(k ? (a * c) : (a / c))" in generate(module)

    def test_replace_expression_missing_raises(self):
        module = parse_module(MIXER_SOURCE)
        stray = ast.BinaryOp("+", ast.Identifier("x"), ast.Identifier("y"))
        with pytest.raises(TransformError):
            replace_expression(module, stray, ast.Identifier("z"))

    def test_binary_operations_filter(self):
        module = parse_module(MIXER_SOURCE)
        all_ops = binary_operations(module)
        adds = binary_operations(module, ops=["+"])
        assert len(adds) == 3
        assert len(all_ops) > len(adds)

    def test_ternary_operations_initially_empty(self):
        module = parse_module(MIXER_SOURCE)
        assert ternary_operations(module) == []
