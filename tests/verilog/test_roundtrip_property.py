"""Property-based round-trip tests for the Verilog frontend.

Random expression trees and small modules are generated from the AST grammar,
rendered to Verilog, re-parsed and re-rendered; the second rendering must be
identical to the first (code generation is a fixed point of parse∘generate).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verilog import ast
from repro.verilog.codegen import generate
from repro.verilog.parser import parse, parse_expression

_IDENTIFIERS = st.sampled_from(["a", "b", "c", "data", "sel", "x0", "y_1"])
_BINARY_OPS = st.sampled_from(["+", "-", "*", "/", "%", "<<", ">>", "&", "|",
                               "^", "<", ">", "<=", ">=", "==", "!=", "&&", "||"])
_UNARY_OPS = st.sampled_from(["~", "!", "-", "&", "|", "^"])


def _leaf():
    numbers = st.integers(min_value=0, max_value=255).map(
        lambda v: ast.IntConst(str(v)))
    sized = st.integers(min_value=0, max_value=15).map(
        lambda v: ast.IntConst(f"4'd{v}"))
    identifiers = _IDENTIFIERS.map(ast.Identifier)
    return st.one_of(identifiers, numbers, sized)


def _expressions(max_depth: int = 4):
    return st.recursive(
        _leaf(),
        lambda children: st.one_of(
            st.builds(ast.BinaryOp, _BINARY_OPS, children, children),
            st.builds(ast.UnaryOp, _UNARY_OPS, children),
            st.builds(ast.TernaryOp, children, children, children),
            st.lists(children, min_size=1, max_size=3).map(ast.Concat),
            st.builds(ast.BitSelect, _IDENTIFIERS.map(ast.Identifier),
                      st.integers(min_value=0, max_value=31).map(
                          lambda v: ast.IntConst(str(v)))),
        ),
        max_leaves=12,
    )


class TestExpressionRoundTrip:
    @given(_expressions())
    @settings(max_examples=150, deadline=None)
    def test_generate_parse_generate_is_identity(self, expr):
        text = generate(expr)
        reparsed = parse_expression(text)
        assert generate(reparsed) == text

    @given(_expressions())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_operator_multiset(self, expr):
        def operator_multiset(node):
            ops = []
            for item in node.iter_tree():
                if isinstance(item, ast.BinaryOp):
                    ops.append(item.op)
            return sorted(ops)

        reparsed = parse_expression(generate(expr))
        assert operator_multiset(reparsed) == operator_multiset(expr)


class TestModuleRoundTrip:
    @given(
        st.lists(
            st.tuples(_IDENTIFIERS, _expressions(max_depth=3)),
            min_size=1, max_size=5, unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_module_of_random_assigns_roundtrips(self, assignments):
        gen = generate
        body = "\n".join(
            f"  assign {target}_out = {gen(expr)};"
            for target, expr in assignments
        )
        inputs = ",\n".join(f"  input [7:0] {name}"
                            for name in ["a", "b", "c", "data", "sel", "x0", "y_1"])
        outputs = ",\n".join(f"  output [7:0] {target}_out"
                             for target, _ in assignments)
        source = f"module rand_mod (\n{inputs},\n{outputs}\n);\n{body}\nendmodule\n"

        first = generate(parse(source))
        second = generate(parse(first))
        assert first == second
