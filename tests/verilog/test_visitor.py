"""Unit tests for the AST traversal utilities."""

from repro.verilog import ast
from repro.verilog.parser import parse_expression, parse_module
from repro.verilog.visitor import (
    NodeTransformer,
    NodeVisitor,
    count_nodes,
    find_all,
    find_parent_map,
    replace_node,
    walk,
    walk_with_parent,
)

from ..conftest import MIXER_SOURCE


class TestWalk:
    def test_walk_yields_all_binary_ops(self):
        expr = parse_expression("a + b * c - d")
        ops = [n.op for n in walk(expr) if isinstance(n, ast.BinaryOp)]
        assert sorted(ops) == ["*", "+", "-"]

    def test_walk_with_parent_pairs(self):
        expr = parse_expression("a + b")
        pairs = list(walk_with_parent(expr))
        assert pairs[0] == (expr, None)
        children_parents = {id(node): parent for node, parent in pairs[1:]}
        assert children_parents[id(expr.left)] is expr
        assert children_parents[id(expr.right)] is expr

    def test_find_all(self):
        module = parse_module(MIXER_SOURCE)
        assigns = find_all(module, ast.ContinuousAssign)
        assert len(assigns) == 1
        identifiers = find_all(module, ast.Identifier)
        assert len(identifiers) > 10

    def test_count_nodes_with_predicate(self):
        expr = parse_expression("a + b + c")
        total = count_nodes(expr)
        adds = count_nodes(expr, lambda n: isinstance(n, ast.BinaryOp))
        assert total == 5
        assert adds == 2


class TestParentMap:
    def test_parent_map_covers_all_non_root_nodes(self):
        module = parse_module(MIXER_SOURCE)
        parents = find_parent_map(module)
        all_nodes = list(walk(module))
        assert len(parents) == len(all_nodes) - 1

    def test_replace_node(self):
        expr = parse_expression("a + b")
        new = ast.Identifier("c")
        assert replace_node(expr, expr.right, new)
        assert expr.right is new

    def test_replace_node_missing_returns_false(self):
        expr = parse_expression("a + b")
        stray = ast.Identifier("zzz")
        assert replace_node(expr, stray, ast.Identifier("w")) is False


class TestVisitors:
    def test_node_visitor_dispatch(self):
        class Counter(NodeVisitor):
            def __init__(self):
                self.adds = 0

            def visit_BinaryOp(self, node):
                if node.op == "+":
                    self.adds += 1
                self.generic_visit(node)

        counter = Counter()
        counter.visit(parse_module(MIXER_SOURCE))
        assert counter.adds == 3

    def test_node_transformer_replaces(self):
        class PlusToMinus(NodeTransformer):
            def visit_BinaryOp(self, node):
                self.generic_visit(node)
                if node.op == "+":
                    return ast.BinaryOp("-", node.left, node.right)
                return node

        expr = parse_expression("a + (b + c)")
        transformed = PlusToMinus().visit(expr)
        ops = [n.op for n in walk(transformed) if isinstance(n, ast.BinaryOp)]
        assert ops == ["-", "-"]

    def test_replace_child_in_list_field(self):
        concat = parse_expression("{a, b, c}")
        new = ast.Identifier("z")
        assert concat.replace_child(concat.parts[1], new)
        assert concat.parts[1] is new

    def test_replace_child_not_found(self):
        expr = parse_expression("a + b")
        assert expr.replace_child(ast.Identifier("nope"), ast.Identifier("x")) is False
