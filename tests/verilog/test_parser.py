"""Unit tests for the Verilog parser."""

import pytest

from repro.verilog import ast
from repro.verilog.errors import ParseError
from repro.verilog.parser import parse, parse_expression, parse_module


class TestModuleStructure:
    def test_empty_module(self):
        module = parse_module("module empty (); endmodule")
        assert module.name == "empty"
        assert module.ports == []
        assert module.items == []

    def test_module_without_port_list(self):
        module = parse_module("module bare; wire x; endmodule")
        assert module.name == "bare"
        assert len(module.items) == 1

    def test_ansi_ports(self):
        module = parse_module("""
            module m (input clk, input [7:0] a, b, output reg [3:0] y);
            endmodule
        """)
        assert module.port_names() == ["clk", "a", "b", "y"]
        assert module.find_port("clk").direction == "input"
        assert module.find_port("a").width.width() == 8
        # b inherits the direction/width of the preceding declaration
        assert module.find_port("b").direction == "input"
        assert module.find_port("b").width.width() == 8
        assert module.find_port("y").net_type == "reg"

    def test_non_ansi_ports_merge_directions(self):
        module = parse_module("""
            module m (a, b, y);
              input [3:0] a, b;
              output y;
              assign y = a < b;
            endmodule
        """)
        assert module.find_port("a").direction == "input"
        assert module.find_port("a").width.width() == 4
        assert module.find_port("y").direction == "output"

    def test_header_parameters(self):
        module = parse_module("""
            module m #(parameter WIDTH = 8, parameter DEPTH = 16) (input clk);
            endmodule
        """)
        assert [p.name for p in module.parameters] == ["WIDTH", "DEPTH"]
        assert module.parameters[0].value.as_int() == 8

    def test_multiple_modules(self):
        source = parse("module a (); endmodule module b (); endmodule")
        assert [m.name for m in source.modules] == ["a", "b"]
        assert source.top.name == "a"
        assert source.find_module("b") is not None
        assert source.find_module("zzz") is None

    def test_parse_module_rejects_multiple(self):
        with pytest.raises(ParseError):
            parse_module("module a (); endmodule module b (); endmodule")


class TestDeclarations:
    def test_wire_with_init(self):
        module = parse_module("module m (); wire [7:0] x = 8'hAA; endmodule")
        decl = module.items[0]
        assert isinstance(decl, ast.NetDeclaration)
        assert decl.names == ["x"]
        assert decl.init.as_int() == 0xAA

    def test_reg_array(self):
        module = parse_module("module m (); reg [7:0] mem [0:255]; endmodule")
        decl = module.items[0]
        assert decl.net_type == "reg"
        assert len(decl.array_dims) == 1
        assert decl.array_dims[0].width() == 256

    def test_localparam(self):
        module = parse_module("module m (); localparam STATE_IDLE = 2'b00; endmodule")
        param = module.items[0]
        assert isinstance(param, ast.ParamDeclaration)
        assert param.local is True

    def test_signed_declaration(self):
        module = parse_module("module m (); wire signed [7:0] s; endmodule")
        assert module.items[0].signed is True

    def test_genvar(self):
        module = parse_module("module m (); genvar i, j; endmodule")
        assert module.items[0].names == ["i", "j"]

    def test_integer_declaration(self):
        module = parse_module("module m (); integer i; endmodule")
        assert module.items[0].net_type == "integer"


class TestBehaviour:
    def test_continuous_assign(self):
        module = parse_module("module m (input a, b, output y); assign y = a & b; endmodule")
        item = module.items[0]
        assert isinstance(item, ast.ContinuousAssign)
        assert isinstance(item.rhs, ast.BinaryOp)
        assert item.rhs.op == "&"

    def test_always_posedge(self):
        module = parse_module("""
            module m (input clk, input d, output reg q);
              always @(posedge clk) q <= d;
            endmodule
        """)
        always = module.items[0]
        assert isinstance(always, ast.AlwaysBlock)
        assert always.sensitivity[0].edge == "posedge"
        assert isinstance(always.statement, ast.NonBlockingAssign)

    def test_always_star(self):
        module = parse_module("""
            module m (input a, output reg y);
              always @(*) y = a;
            endmodule
        """)
        assert module.items[0].sensitivity[0].is_wildcard

    def test_sensitivity_or_list(self):
        module = parse_module("""
            module m (input a, b, output reg y);
              always @(a or b) y = a ^ b;
            endmodule
        """)
        assert len(module.items[0].sensitivity) == 2

    def test_if_else_chain(self):
        module = parse_module("""
            module m (input [1:0] s, input [7:0] a, b, output reg [7:0] y);
              always @(*) begin
                if (s == 2'd0) y = a;
                else if (s == 2'd1) y = b;
                else y = a + b;
              end
            endmodule
        """)
        block = module.items[0].statement
        outer_if = block.statements[0]
        assert isinstance(outer_if, ast.IfStatement)
        assert isinstance(outer_if.else_stmt, ast.IfStatement)

    def test_case_statement(self):
        module = parse_module("""
            module m (input [1:0] s, output reg [1:0] y);
              always @(*) begin
                case (s)
                  2'b00: y = 2'b11;
                  2'b01, 2'b10: y = 2'b00;
                  default: y = s;
                endcase
              end
            endmodule
        """)
        case = module.items[0].statement.statements[0]
        assert isinstance(case, ast.CaseStatement)
        assert len(case.items) == 3
        assert len(case.items[1].conditions) == 2
        assert case.items[2].is_default

    def test_for_loop(self):
        module = parse_module("""
            module m (input [7:0] a, output reg [7:0] y);
              integer i;
              always @(*) begin
                y = 0;
                for (i = 0; i < 8; i = i + 1)
                  y = y ^ a[i];
              end
            endmodule
        """)
        loop = module.items[1].statement.statements[1]
        assert isinstance(loop, ast.ForStatement)

    def test_named_block(self):
        module = parse_module("""
            module m (input a, output reg y);
              always @(*) begin : myblock
                y = a;
              end
            endmodule
        """)
        assert module.items[0].statement.name == "myblock"

    def test_task_call_statement(self):
        module = parse_module("""
            module m ();
              initial begin
                $display("hello", 42);
              end
            endmodule
        """)
        call = module.items[0].statement.statements[0]
        assert isinstance(call, ast.TaskCall)
        assert call.name == "$display"
        assert len(call.args) == 2

    def test_function_declaration(self):
        module = parse_module("""
            module m (input [7:0] a, output [7:0] y);
              function [7:0] double;
                input [7:0] value;
                double = value << 1;
              endfunction
              assign y = double(a);
            endmodule
        """)
        func = module.items[0]
        assert isinstance(func, ast.FunctionDeclaration)
        assert func.name == "double"
        call = module.items[1].rhs
        assert isinstance(call, ast.FunctionCall)

    def test_module_instance(self):
        module = parse_module("""
            module top (input [7:0] a, b, output [7:0] y);
              adder #(.WIDTH(8)) u0 (.x(a), .y(b), .sum(y));
              sub u1 (a, b, y);
            endmodule
        """)
        named = module.items[0]
        assert isinstance(named, ast.ModuleInstance)
        assert named.module_name == "adder"
        assert named.parameters[0].name == "WIDTH"
        assert named.connections[0].name == "x"
        positional = module.items[1]
        assert positional.connections[0].name is None


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_addition(self):
        expr = parse_expression("a + b << 2")
        assert expr.op == "<<"
        assert expr.left.op == "+"

    def test_power_right_associative(self):
        expr = parse_expression("a ** b ** c")
        assert expr.op == "**"
        assert expr.right.op == "**"

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_ternary(self):
        expr = parse_expression("sel ? a + b : a - b")
        assert isinstance(expr, ast.TernaryOp)
        assert expr.true_value.op == "+"
        assert expr.false_value.op == "-"

    def test_nested_ternary(self):
        expr = parse_expression("k0 ? (k1 ? a : b) : c")
        assert isinstance(expr.true_value, ast.TernaryOp)

    def test_unary_reduction(self):
        expr = parse_expression("&bus")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "&"

    def test_unary_binds_tighter_than_binary(self):
        expr = parse_expression("~a & b")
        assert expr.op == "&"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_concat_and_replication(self):
        concat = parse_expression("{a, b[3:0], 2'b01}")
        assert isinstance(concat, ast.Concat)
        assert len(concat.parts) == 3
        repl = parse_expression("{4{a}}")
        assert isinstance(repl, ast.Replication)
        assert repl.count.as_int() == 4

    def test_nested_concat_with_replication(self):
        expr = parse_expression("{{2{a}}, b}")
        assert isinstance(expr, ast.Concat)
        assert isinstance(expr.parts[0], ast.Replication)

    def test_selects(self):
        bit = parse_expression("mem[3]")
        assert isinstance(bit, ast.BitSelect)
        part = parse_expression("bus[7:4]")
        assert isinstance(part, ast.PartSelect)
        indexed = parse_expression("bus[base +: 4]")
        assert isinstance(indexed, ast.IndexedPartSelect)
        assert indexed.direction == "+:"

    def test_chained_select(self):
        expr = parse_expression("mem[3][1]")
        assert isinstance(expr, ast.BitSelect)
        assert isinstance(expr.target, ast.BitSelect)

    def test_function_call_expression(self):
        expr = parse_expression("$signed(a) + f(b, c)")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.FunctionCall)
        assert len(expr.right.args) == 2

    def test_int_const_parsing(self):
        assert parse_expression("4'b1101").as_int() == 13
        assert parse_expression("8'hff").as_int() == 255
        assert parse_expression("16'd1000").as_int() == 1000
        assert parse_expression("42").as_int() == 42
        assert parse_expression("4'b1101").width == 4
        assert parse_expression("42").width is None

    def test_int_const_with_x_bits_raises_on_as_int(self):
        const = parse_expression("4'b10xx")
        with pytest.raises(ValueError):
            const.as_int()

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b extra")


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("module m (); wire x endmodule")

    def test_unclosed_module(self):
        with pytest.raises(ParseError):
            parse("module m (); wire x;")

    def test_unsupported_generate(self):
        with pytest.raises(ParseError):
            parse("module m (); generate endgenerate endmodule")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse("module m ();\n  assign = 1;\nendmodule")
        assert excinfo.value.line == 2
