"""Regression: 'cli report' on a store holding only quarantined jobs.

A store whose every job is quarantined (no successful records at all) used
to degrade confusingly: the PARTIAL line suggested a plain resume — which
skips known-poison jobs and does nothing — and the failures rendered as
unaligned prose.  The report must render the aligned failure table, give
the correct remedy (raise the retry budget), and exit cleanly.
"""

import pytest

from repro.api import AttackSpec, LockerSpec, ResultsStore, Runner, Scenario
from repro.api.faults import FaultPlan
from repro.cli import main
from repro.eval import store_report


POISON_ALL = FaultPlan.from_dict(
    {"seed": 5, "faults": [{"kind": "transient", "rate": 1.0}]})


def tiny_scenario(**overrides):
    base = dict(
        name="report-quarantine",
        benchmarks=("SASC",),
        lockers=(LockerSpec("era", key_budget_fraction=0.5),),
        attacks=(AttackSpec("majority", rounds=2),),
        samples=1,
        scale=0.1,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


@pytest.fixture
def quarantined_store(tmp_path):
    store = ResultsStore(tmp_path / "store")
    report = Runner(tiny_scenario(), store=store, fault_plan=POISON_ALL).run()
    assert len(report.failures) == 1 and not report.records
    return store


class TestQuarantineOnlyReport:
    def test_renders_failure_table(self, quarantined_store):
        text = store_report(quarantined_store)
        # The CI fault-injection job greps for this phrase.
        assert "Quarantined jobs: 1" in text
        # Aligned table, same shape 'repro-lock run' prints.
        assert "job" in text and "failure" in text and "attempts" in text
        assert "attack__SASC__era__majority__s0" in text
        assert "transient" in text

    def test_partial_hint_names_the_remedy(self, quarantined_store):
        text = store_report(quarantined_store)
        assert "all 1 missing job(s) quarantined" in text
        assert "--retries" in text
        # A plain resume would skip the poison job — don't suggest it.
        assert "(resume with 'repro-lock run')" not in text

    def test_cli_report_exits_cleanly(self, quarantined_store, capsys):
        assert main(["report", str(quarantined_store.root)]) == 0
        out = capsys.readouterr().out
        assert "Quarantined jobs: 1" in out

    def test_mixed_store_counts_both(self, tmp_path):
        # One poisoned attack + one clean attack: the PARTIAL line must
        # separate resumable jobs from quarantined ones.
        scenario = tiny_scenario(
            attacks=(AttackSpec("majority", rounds=2),
                     AttackSpec("random")))
        poison_random = FaultPlan.from_dict(
            {"seed": 5, "faults": [
                {"kind": "transient", "rate": 1.0, "match": "__random__"}]})
        store = ResultsStore(tmp_path / "store")
        Runner(scenario, store=store, fault_plan=poison_random).run()
        text = store_report(store)
        assert "1 quarantined" in text or "quarantined" in text
        assert "Records: 1/2" in text

    def test_complete_store_is_unchanged(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        Runner(tiny_scenario(), store=store).run()
        text = store_report(store)
        assert "COMPLETE" in text
        assert "Quarantined" not in text
