"""Scenario service end-to-end tests: server, client, protocol contract.

Every test runs a real :class:`~repro.api.server.ScenarioServer` in-process
on a per-test Unix socket (TCP in one transport test) and talks to it
through :class:`~repro.api.client.ScenarioClient` — the same code paths
``cli serve``/``submit``/``watch`` use.
"""

import threading
import time

import pytest

from repro.api import (
    AttackSpec,
    LockerSpec,
    MetricSpec,
    ResultsStore,
    Runner,
    Scenario,
)
from repro.api.client import ScenarioClient, ServerError, parse_address
from repro.api.server import ScenarioServer


def tiny_scenario(name="svc", seed=3, **overrides):
    base = dict(
        name=name,
        benchmarks=("SASC",),
        lockers=(LockerSpec("assure"),),
        attacks=(AttackSpec("snapshot", rounds=4, time_budget=0.5),),
        samples=1,
        scale=0.15,
        seed=seed,
    )
    base.update(overrides)
    return Scenario(**base)


def metric_scenario(name="svc-metric", seed=3, vectors=4):
    return tiny_scenario(
        name=name, seed=seed, attacks=(),
        metrics=(MetricSpec("avalanche", {"vectors": vectors}),))


def strip_timing(record):
    record = dict(record)
    record.pop("elapsed_seconds", None)
    return record


def store_records(path):
    store = ResultsStore(path)
    return {job_id: strip_timing(store.load(job_id))
            for job_id in store.job_ids()}


@pytest.fixture
def server(tmp_path):
    instance = ScenarioServer(runs_root=tmp_path / "runs")
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture
def client(server):
    with ScenarioClient(server.address) as connected:
        yield connected


class TestRoundTrip:
    def test_submit_watch_report(self, server, client):
        scenario = tiny_scenario()
        submitted = client.submit(scenario)
        assert submitted["job_id"] == "job-0001"
        assert submitted["state"] == "queued"
        assert submitted["determinism_class"] == "deterministic"
        assert not submitted["deduplicated"]

        events = []
        final = client.watch(submitted["job_id"], on_event=events.append)
        assert final["state"] == "done"
        assert final["executed"] == final["total"] == 1
        assert final["failures"] == 0
        # One progress event per job, shaped like the Runner's hook data.
        assert len(events) == 1
        assert events[0]["done"] == 1 and events[0]["total"] == 1
        assert events[0]["kind"] == "attack"

        result = client.report(job_id=submitted["job_id"])
        assert scenario.name in result["report"]
        assert result["data"]  # machine-readable report came along

    def test_store_is_bit_identical_to_direct_run(self, server, client,
                                                  tmp_path):
        scenario = tiny_scenario()
        submitted = client.submit(scenario)
        final = client.wait(submitted["job_id"])
        assert final["state"] == "done"

        local = ResultsStore(tmp_path / "local")
        Runner(scenario, store=local).run()
        assert store_records(submitted["store"]) == store_records(local.root)

    def test_resubmission_dedups_in_memory(self, server, client):
        scenario = tiny_scenario()
        first = client.submit(scenario)
        client.wait(first["job_id"])
        second = client.submit(scenario)
        assert second["deduplicated"]
        assert second["job_id"] == first["job_id"]
        # No second run: still exactly one job on the server.
        assert len(client.jobs()) == 1

    def test_resubmission_after_restart_resumes_with_zero_executed(
            self, tmp_path):
        scenario = tiny_scenario()
        runs_root = tmp_path / "runs"
        first_server = ScenarioServer(runs_root=runs_root)
        first_server.start()
        try:
            with ScenarioClient(first_server.address) as client:
                first = client.submit(scenario)
                assert client.wait(first["job_id"])["executed"] == 1
        finally:
            first_server.stop()

        # A fresh server has no in-memory dedup state, but the
        # per-fingerprint store path turns the rerun into a pure resume.
        second_server = ScenarioServer(runs_root=runs_root)
        second_server.start()
        try:
            with ScenarioClient(second_server.address) as client:
                second = client.submit(scenario)
                assert not second["deduplicated"]
                final = client.wait(second["job_id"])
                assert final["state"] == "done"
                assert final["executed"] == 0
                assert final["skipped"] == final["total"] == 1
        finally:
            second_server.stop()

    def test_tcp_transport(self, tmp_path):
        instance = ScenarioServer(runs_root=tmp_path / "runs",
                                  host="127.0.0.1", port=0)
        instance.start()
        try:
            assert instance.address.startswith("tcp:127.0.0.1:")
            kind, target = parse_address(instance.address)
            assert kind == "tcp" and target[1] == instance.port
            with ScenarioClient(instance.address) as client:
                assert client.ping()["protocol"] == 1
        finally:
            instance.stop()


class TestWarmPlanCache:
    def test_second_submission_compiles_no_new_plans(self, server, client):
        # The scenario seed feeds the locking rng, so a changed master seed
        # would change the locked netlist itself (and honestly need a new
        # plan).  The warm-cache property is about *identical netlists
        # across submissions*: a second, non-deduplicated submission that
        # simulates the same designs must add 0 plan-cache misses.
        first = client.submit(metric_scenario(name="warm-a", vectors=4))
        assert client.wait(first["job_id"])["state"] == "done"
        before = client.ping()["plan_cache"]

        # Different fingerprint (different name + metric options), same
        # locked design: a real second run, served entirely from cache.
        second = client.submit(metric_scenario(name="warm-b", vectors=8))
        assert not second["deduplicated"]
        final = client.wait(second["job_id"])
        assert final["state"] == "done" and final["executed"] == 1

        after = client.status(second["job_id"])["plan_cache"]
        assert after["misses"] == before["misses"]  # 0 new compilations
        assert after["hits"] > before["hits"]

    def test_plan_cache_stats_exposed_on_ping_and_status(self, server,
                                                         client):
        stats = client.ping()["plan_cache"]
        assert set(stats) == {"hits", "misses", "size", "maxsize"}
        submitted = client.submit(metric_scenario(name="warm-stats"))
        client.wait(submitted["job_id"])
        status = client.status(submitted["job_id"])
        assert set(status["plan_cache"]) == set(stats)


class TestErrorPaths:
    def test_invalid_scenario_carries_validation_message(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.submit({"name": "broken"})
        assert excinfo.value.code == "INVALID_SCENARIO"
        # The exact ScenarioError text, not a bare "invalid scenario".
        assert "at least one benchmark" in excinfo.value.message

    def test_unknown_job(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.status("job-9999")
        assert excinfo.value.code == "UNKNOWN_JOB"
        assert "job-9999" in excinfo.value.message

    def test_backend_unavailable_lists_registered_names(self, client):
        scenario = tiny_scenario().to_dict()
        scenario["backend"] = "definitely-not-a-backend"
        with pytest.raises(ServerError) as excinfo:
            client.submit(scenario)
        assert excinfo.value.code == "BACKEND_UNAVAILABLE"
        assert "serial" in excinfo.value.message
        assert "process" in excinfo.value.message

    def test_unknown_op_and_malformed_request(self, server, client):
        with pytest.raises(ServerError) as excinfo:
            client.call("frobnicate")
        assert excinfo.value.code == "UNKNOWN_OP"
        with pytest.raises(ServerError) as excinfo:
            client.call("status", {})  # missing job_id
        assert excinfo.value.code == "INVALID_REQUEST"

    def test_report_on_missing_store(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.report(store="no/such/store")
        assert excinfo.value.code == "STORE_ERROR"


class TestCancelAndShutdown:
    def test_cancel_queued_job(self, server, client):
        # Worker 1 is busy with the first job; the second is deterministic
        # to cancel while still queued.
        blocker = client.submit(tiny_scenario(name="blocker", samples=2))
        victim = client.submit(tiny_scenario(name="victim", seed=11))
        cancelled = client.cancel(victim["job_id"])
        assert cancelled["state"] == "cancelled"
        final = client.wait(victim["job_id"])
        assert final["state"] == "cancelled"
        # The blocker is unaffected.
        assert client.wait(blocker["job_id"])["state"] == "done"

    def test_cancel_terminal_job_is_a_no_op(self, server, client):
        submitted = client.submit(tiny_scenario())
        client.wait(submitted["job_id"])
        result = client.cancel(submitted["job_id"])
        assert result["state"] == "done"
        assert result["changed"] is False

    def test_second_client_queries_while_job_in_flight(self, server, client):
        # The acceptance gate: a concurrent second client can status/list
        # mid-run.  With one worker the second submission is reliably
        # non-terminal while the first drains.
        running = client.submit(tiny_scenario(name="busy", samples=2))
        queued = client.submit(tiny_scenario(name="waiting", seed=17))
        with ScenarioClient(server.address) as other:
            status = other.status(queued["job_id"])
            assert status["state"] in ("queued", "running", "done")
            assert {job["job_id"] for job in other.jobs()} == {
                running["job_id"], queued["job_id"]}
        assert client.wait(queued["job_id"])["state"] == "done"

    def test_shutdown_rejects_new_submissions(self, tmp_path):
        instance = ScenarioServer(runs_root=tmp_path / "runs")
        instance.start()
        try:
            with ScenarioClient(instance.address) as client:
                result = client.shutdown(mode="drain")
                assert result["shutting_down"]
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    try:
                        client.submit(tiny_scenario())
                    except ServerError as exc:
                        assert exc.code == "SHUTTING_DOWN"
                        break
                    except ConnectionError:
                        break  # listener already gone: also a valid refusal
                    time.sleep(0.05)
                else:
                    pytest.fail("server kept accepting submissions after "
                                "shutdown")
        finally:
            instance.stop()

    def test_drain_shutdown_finishes_queued_work(self, tmp_path):
        instance = ScenarioServer(runs_root=tmp_path / "runs")
        instance.start()
        scenario = tiny_scenario(name="drained")
        try:
            with ScenarioClient(instance.address) as client:
                submitted = client.submit(scenario)
                client.shutdown(mode="drain")
            instance.serve_forever()  # returns once workers drained
        finally:
            instance.stop()
        # The queued run completed before the server exited.
        records = store_records(submitted["store"])
        assert len(records) == 1

    def test_watch_finished_job_replays_history(self, server, client):
        submitted = client.submit(tiny_scenario())
        client.wait(submitted["job_id"])
        events = []
        final = client.watch(submitted["job_id"], on_event=events.append)
        assert final["state"] == "done"
        assert len(events) == 1  # full replay, then immediate return


class TestServerConstruction:
    def test_rejects_bad_configuration(self, tmp_path):
        with pytest.raises(ValueError):
            ScenarioServer(runs_root=tmp_path, workers=0)
        with pytest.raises(ValueError):
            ScenarioServer(runs_root=tmp_path, run_jobs=0)
        with pytest.raises(ValueError):
            ScenarioServer(runs_root=tmp_path, socket_path=tmp_path / "s",
                           host="127.0.0.1", port=0)
        with pytest.raises(ValueError):
            ScenarioServer(runs_root=tmp_path, host="127.0.0.1")  # no port

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        runs_root = tmp_path / "runs"
        runs_root.mkdir()
        (runs_root / "server.sock").touch()  # dead server's leftover
        instance = ScenarioServer(runs_root=runs_root)
        instance.start()
        try:
            with ScenarioClient(instance.address) as client:
                assert client.ping()["protocol"] == 1
        finally:
            instance.stop()

    def test_second_server_on_live_socket_refuses(self, server):
        duplicate = ScenarioServer(runs_root=server.runs_root)
        with pytest.raises(OSError, match="already listening"):
            duplicate.start()
