"""Scenario dataclass tree: validation, JSON round-trips, expansion."""

import json

import pytest

from repro.api import (
    AttackSpec,
    JobSpec,
    LockerSpec,
    MetricSpec,
    Scenario,
    ScenarioError,
)


def small_scenario(**overrides):
    base = dict(
        name="unit",
        benchmarks=("SASC", "FIR"),
        lockers=(LockerSpec("assure"), LockerSpec("era", 0.5)),
        attacks=(AttackSpec("snapshot", rounds=5, time_budget=1.0),),
        metrics=(MetricSpec("avalanche", {"vectors": 4}),),
        samples=2,
        scale=0.15,
        seed=9,
    )
    base.update(overrides)
    return Scenario(**base)


class TestValidation:
    def test_valid_scenario_passes(self):
        small_scenario().validate()

    def test_requires_benchmarks_and_lockers(self):
        with pytest.raises(ScenarioError):
            small_scenario(benchmarks=())
        with pytest.raises(ScenarioError):
            small_scenario(lockers=())

    def test_requires_attack_or_metric(self):
        with pytest.raises(ScenarioError):
            small_scenario(attacks=(), metrics=())
        # Metric-only scenarios are fine (avalanche studies).
        small_scenario(attacks=()).validate()

    def test_unknown_components_rejected(self):
        with pytest.raises(ScenarioError, match="unknown locking algorithm"):
            small_scenario(lockers=(LockerSpec("warlock"),)).validate()
        with pytest.raises(ScenarioError, match="unknown attack"):
            small_scenario(attacks=(AttackSpec("voodoo"),)).validate()
        with pytest.raises(ScenarioError, match="unknown metric"):
            small_scenario(metrics=(MetricSpec("entropy9000"),)).validate()
        with pytest.raises(ScenarioError, match="unknown benchmark"):
            small_scenario(benchmarks=("NOPE",)).validate()

    def test_duplicates_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            small_scenario(lockers=(LockerSpec("era"),
                                    LockerSpec("era"))).validate()

    def test_field_ranges(self):
        with pytest.raises(ScenarioError):
            small_scenario(samples=0)
        with pytest.raises(ScenarioError):
            small_scenario(scale=0.0)
        with pytest.raises(ScenarioError):
            LockerSpec("era", key_budget_fraction=0.0)
        with pytest.raises(ScenarioError):
            AttackSpec(rounds=0)

    def test_options_must_not_shadow_runner_arguments(self):
        with pytest.raises(ScenarioError, match="options must not override"):
            LockerSpec("era", options={"rng": 1})
        with pytest.raises(ScenarioError, match="rounds"):
            AttackSpec("snapshot", options={"rounds": 9})
        with pytest.raises(ScenarioError, match="options must not override"):
            MetricSpec("avalanche", options={"design": None})
        # Genuinely free-form options remain allowed.
        AttackSpec("snapshot", options={"deterministic": False})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario field"):
            Scenario.from_dict({"name": "x", "benchmarks": ["SASC"],
                                "lockers": ["era"], "attacks": ["snapshot"],
                                "typo_field": 1})
        with pytest.raises(ScenarioError, match="unknown locker field"):
            LockerSpec.from_dict({"algorithm": "era", "budget": 0.5})


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        scenario = small_scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_json_round_trip_is_lossless(self, tmp_path):
        scenario = small_scenario()
        path = scenario.save(tmp_path / "scn.json")
        loaded = Scenario.from_file(path)
        assert loaded == scenario
        assert loaded.fingerprint() == scenario.fingerprint()

    def test_round_trip_preserves_run_plan(self, tmp_path):
        scenario = small_scenario()
        reloaded = Scenario.from_json(scenario.to_json())
        original_jobs = scenario.expand()
        reloaded_jobs = reloaded.expand()
        assert [job.job_id for job in original_jobs] == \
            [job.job_id for job in reloaded_jobs]
        assert [(j.locker_seed, j.attack_seed if j.kind == "attack"
                 else j.metric_seed) for j in original_jobs] == \
            [(j.locker_seed, j.attack_seed if j.kind == "attack"
              else j.metric_seed) for j in reloaded_jobs]

    def test_bare_name_strings_accepted(self):
        scenario = Scenario.from_dict({
            "name": "short", "benchmarks": ["SASC"], "lockers": ["era"],
            "attacks": ["snapshot"], "metrics": ["avalanche"],
            "samples": 1, "scale": 0.15,
        })
        assert scenario.lockers[0] == LockerSpec("era")
        assert scenario.attacks[0].name == "snapshot"

    def test_invalid_json_raises_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError):
            Scenario.from_json("{not json")
        with pytest.raises(ScenarioError):
            Scenario.from_file(tmp_path / "missing.json")

    def test_saved_file_is_plain_json(self, tmp_path):
        path = small_scenario().save(tmp_path / "scn.json")
        data = json.loads(path.read_text())
        assert data["name"] == "unit"
        assert data["lockers"][1]["key_budget_fraction"] == 0.5

    def test_max_lanes_round_trips_and_defaults_stay_stable(self):
        capped = small_scenario(max_lanes=4096)
        assert Scenario.from_dict(capped.to_dict()) == capped
        assert capped.to_dict()["max_lanes"] == 4096
        # Unset: omitted from the dict, so pre-knob fingerprints (and the
        # store stamps derived from them) are unchanged.
        assert "max_lanes" not in small_scenario().to_dict()
        assert small_scenario(max_lanes=4096).fingerprint() != \
            small_scenario().fingerprint()
        with pytest.raises(ScenarioError):
            small_scenario(max_lanes=0)
        # Every expanded job inherits the cap.
        assert {job.max_lanes for job in capped.expand()} == {4096}


class TestExpansion:
    def test_job_count_and_order(self):
        scenario = small_scenario()
        jobs = scenario.expand()
        # 2 benchmarks x 2 lockers x 2 samples x (1 attack + 1 metric)
        assert len(jobs) == 16
        assert jobs[0].benchmark == "SASC" and jobs[0].kind == "attack"
        assert jobs[1].kind == "metric"
        ids = [job.job_id for job in jobs]
        assert len(set(ids)) == len(ids), "job ids must be unique"

    def test_legacy_seed_derivation(self):
        import zlib

        scenario = small_scenario()
        job = scenario.expand()[0]
        cell = zlib.crc32(f"{scenario.seed}/SASC/assure".encode()) & 0x7FFFFFFF
        assert job.cell_seed == cell
        assert job.locker_seed == cell
        assert job.attack_seed == cell + 7  # first attack, sample 0

    def test_job_kind_validation(self):
        with pytest.raises(ScenarioError):
            JobSpec(kind="attack", benchmark="SASC", locker=LockerSpec("era"),
                    sample=0, seed=0, scale=1.0)  # missing attack spec

    def test_from_experiment_config_equivalence(self):
        from repro.eval import ExperimentConfig

        config = ExperimentConfig(benchmarks=["SASC"], algorithms=("era",),
                                  scale=0.2, n_test_lockings=3,
                                  relock_rounds=8, automl_time_budget=2.0,
                                  functional_vectors=16, seed=11)
        scenario = config.to_scenario()
        assert scenario.benchmarks == ("SASC",)
        assert scenario.samples == 3
        (attack,) = scenario.attacks
        assert attack.rounds == 8
        assert attack.functional_vectors == 16
        assert Scenario.from_dict(scenario.to_dict()) == scenario
