"""Crash recovery: corrupt records, dead workers, and mid-write leftovers.

A run can die at any point — kill -9 mid-write, an OOM-killed worker, a
truncated record from a full disk.  None of those may poison the *next* run:
unreadable records are re-executed instead of aborting the resume, a crashed
worker costs only its own chunk while every other job still commits, and
``*.json.tmp`` leftovers of interrupted atomic writes are swept on start.
"""

import json
import os
import time

import pytest

from repro.api import (
    AttackSpec,
    JobExecutionError,
    LockerSpec,
    MetricSpec,
    ResultsStore,
    Runner,
    Scenario,
    execute_job,
)
from repro.api.registry import METRICS, register_metric


def quick_scenario(**overrides):
    base = dict(
        name="crash-unit",
        benchmarks=("SASC",),
        lockers=(LockerSpec("assure"), LockerSpec("era")),
        attacks=(AttackSpec("snapshot", rounds=4, time_budget=0.5),),
        samples=1,
        scale=0.15,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


class TestCorruptRecordResume:
    def test_truncated_record_is_reexecuted_not_fatal(self, tmp_path):
        """A record killed mid-write resumes as *missing*, not as a crash.

        Regression: the resume loop used to let ``StoreError`` from
        ``store.load`` propagate, so one truncated file made the whole
        store unresumable.
        """
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        first = Runner(scenario, store=store).run()
        assert first.executed == 2
        victim = store.job_ids()[0]
        store.record_path(victim).write_text('{"job_id": "tru')
        report = Runner(scenario, store=store).run()
        assert (report.executed, report.skipped) == (1, 1)
        # The re-executed record is whole again and loadable.
        record = store.load(victim)
        assert record["job_id"] == victim
        json.dumps(record)

    def test_reexecuted_record_matches_a_clean_run(self, tmp_path):
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        first = Runner(scenario, store=store).run()
        victim = store.job_ids()[0]
        pristine = dict(first.records[victim])
        store.record_path(victim).write_text("not json at all")
        Runner(scenario, store=store).run()
        recovered = store.load(victim)
        pristine.pop("elapsed_seconds", None)
        recovered.pop("elapsed_seconds", None)
        assert recovered == pristine

    def test_discard_removes_only_the_named_record(self, tmp_path):
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        Runner(scenario, store=store).run()
        first, second = store.job_ids()
        assert store.discard(first) is True
        assert store.discard(first) is False  # already gone
        assert store.job_ids() == [second]


class TestTempFileSweep:
    def test_sweep_removes_leftovers_in_root_and_jobs(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        scenario = quick_scenario()
        Runner(scenario, store=store).run()
        (store.jobs_dir / "stale.json.tmp").write_text('{"half": ')
        (store.root / "scenario.json.tmp").write_text('{"finger')
        assert store.sweep_temp_files() == 2
        assert store.sweep_temp_files() == 0
        assert len(store.job_ids()) == 2  # real records untouched

    def test_job_ids_never_count_tmp_files(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        Runner(quick_scenario(), store=store).run()
        before = store.job_ids()
        (store.jobs_dir / "stale.json.tmp").write_text("")
        assert store.job_ids() == before

    def test_runner_sweeps_at_run_start(self, tmp_path):
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        Runner(scenario, store=store).run()
        stale = store.jobs_dir / "stale.json.tmp"
        stale.write_text('{"half": ')
        report = Runner(scenario, store=store).run()
        assert not stale.exists()
        assert report.skipped == 2  # the sweep never touches real records

    def test_clear_records_sweeps_too(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        Runner(quick_scenario(), store=store).run()
        (store.jobs_dir / "stale.json.tmp").write_text("")
        store.clear_records()
        assert store.job_ids() == []
        assert not (store.jobs_dir / "stale.json.tmp").exists()

    def test_sweep_on_empty_store_is_a_noop(self, tmp_path):
        store = ResultsStore(tmp_path / "nothing-here")
        assert store.sweep_temp_files() == 0


@register_metric("crash-worker-test")
def _crash_worker(design, rng=None, delay=2.5, **_):
    """Kill the worker process outright (simulates OOM-kill / segfault).

    Module level so forked pool workers inherit the registration; the delay
    lets the well-behaved job in the other worker finish and commit first.
    """
    time.sleep(delay)
    os._exit(1)


class TestCrashedWorker:
    def test_dead_worker_fails_its_chunk_and_commits_the_rest(self, tmp_path):
        """Regression: ``BrokenProcessPool`` used to propagate out of the
        drain loop, aborting the run before surviving results were
        committed and masking which jobs actually failed."""
        # One locker -> exactly two jobs -> one job per worker chunk, so
        # the crash takes down only its own chunk.
        scenario = quick_scenario(
            lockers=(LockerSpec("era"),),
            attacks=(),
            metrics=(MetricSpec("avalanche", {"vectors": 4}),
                     MetricSpec("crash-worker-test")))
        store = ResultsStore(tmp_path / "store")
        try:
            report = Runner(scenario, store=store, jobs=2).run()
        finally:
            METRICS.unregister("crash-worker-test")
        # The crash surfaces as a per-job quarantine (classified transient:
        # a lost worker is retryable), not a broken-pool crash — and the run
        # completes with the surviving record committed.
        assert [entry["job_id"] for entry in report.failures] == \
            ["metric__SASC__era__crash-worker-test__s0"]
        assert report.failures[0]["failure"] == "crash"
        assert report.failures[0]["classification"] == "transient"
        with pytest.raises(JobExecutionError, match="crash-worker-test"):
            report.raise_for_failures()
        # The well-behaved job beat the crash and its record committed.
        committed = store.job_ids()
        assert len(committed) == 1
        assert "avalanche" in committed[0]
        # Resume re-executes only the crashed chunk's jobs.
        assert {job.job_id for job in scenario.expand()} - set(committed) == \
            {job.job_id for job in scenario.expand()
             if "crash-worker-test" in job.job_id}


class TestSigtermMidRun:
    """Graceful SIGTERM: kill a process-backend run, then resume it."""

    def test_sigterm_commits_drained_records_and_resumes(self, tmp_path):
        """Regression: SIGTERM used to leave ``ProcessPoolExecutor`` blocked
        in its ``with``-exit (``shutdown(wait=True)``) behind hung workers,
        and the aborted run committed nothing.  The backend now kills its
        in-flight workers and commits everything already reported, the
        runner's ``finally`` writes the manifest, and the CLI exits 130 —
        leaving a partial store a plain re-run completes."""
        import signal
        import subprocess
        import sys

        scenario = quick_scenario(samples=2)  # 4 jobs
        scenario_path = tmp_path / "scenario.json"
        scenario.save(scenario_path)
        # Every job sleeps first, so the run is reliably mid-flight when
        # the signal lands; the resume below runs without the fault plan.
        plan_path = tmp_path / "slow.json"
        plan_path.write_text(json.dumps({
            "seed": 0,
            "faults": [{"kind": "slow", "rate": 1.0, "seconds": 1.0}],
        }))
        store_path = tmp_path / "store"

        src_root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_root) + os.pathsep + \
            env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "run", str(scenario_path),
             "--jobs", "2", "--backend", "process",
             "--fault-plan", str(plan_path), "--store", str(store_path),
             "-q"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)

        store = ResultsStore(store_path)
        try:
            # SIGTERM as soon as the first record commits: provably
            # mid-run, with slow jobs still in flight.
            deadline = time.time() + 120.0
            while time.time() < deadline and not store.job_ids():
                if process.poll() is not None:
                    break
                time.sleep(0.05)
            assert store.job_ids(), "no record committed before the deadline"
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate()

        assert process.returncode == 130, stderr
        assert "resume" in stderr  # the operator was told how to continue

        # The interrupted store is a *partial, resumable* store: committed
        # records survived and the manifest was written on the way out.
        committed = store.job_ids()
        assert 0 < len(committed) < 4
        assert store.manifest_path.exists()

        report = Runner(scenario, store=store).run()
        assert report.total == 4
        assert report.skipped == len(committed)
        assert report.executed == 4 - len(committed)
        assert not report.failures

        baseline = Runner(quick_scenario(samples=2),
                          store=ResultsStore(tmp_path / "baseline")).run()

        def stable(records):
            return {job_id: {k: v for k, v in record.items()
                             if k != "elapsed_seconds"}
                    for job_id, record in records.items()}

        assert stable(report.records) == stable(baseline.records)
