"""Co-evolution loop: golden determinism, genome derivation, labels."""

import json
import shutil

import pytest

from repro.api import (
    AttackSpec,
    CoevoSpec,
    LockerSpec,
    MetricSpec,
    Scenario,
)
from repro.api.coevo import CoevoError, CoevoLoop, run_coevo


def coevo_scenario(**coevo_overrides):
    coevo = dict(
        generations=2,
        population=3,
        elites=1,
        algorithms=("era", "assure"),
        fraction_min=0.3,
        fraction_max=0.9,
        option_space={"mode": ("serial", "random")},
        avalanche_vectors=4,
    )
    coevo.update(coevo_overrides)
    return Scenario(
        name="coevo-unit",
        benchmarks=("SASC",),
        lockers=(LockerSpec("era", key_budget_fraction=0.5),),
        attacks=(AttackSpec("majority", rounds=3),),
        samples=1,
        scale=0.1,
        seed=7,
        coevo=CoevoSpec(**coevo),
    )


class TestCoevoSpec:
    def test_roundtrips_through_scenario_json(self):
        scenario = coevo_scenario()
        rebuilt = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict())))
        assert rebuilt == scenario
        assert rebuilt.coevo == scenario.coevo

    def test_plain_scenario_dict_is_unchanged(self):
        # No coevo block -> no "coevo" key, so fingerprints and store
        # stamps of pre-coevo scenarios are untouched.
        scenario = coevo_scenario()
        plain = Scenario.from_dict(
            {k: v for k, v in scenario.to_dict().items() if k != "coevo"})
        assert "coevo" not in plain.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError, match="elites"):
            CoevoSpec(population=2, elites=2)
        with pytest.raises(ValueError, match="fraction"):
            CoevoSpec(fraction_min=0.8, fraction_max=0.4)
        with pytest.raises(ValueError, match="fitness weight"):
            CoevoSpec(kpa_weight=0.0, avalanche_weight=0.0)
        with pytest.raises(ValueError, match="candidate"):
            CoevoSpec(option_space={"mode": ()})


class TestCoevoLoop:
    def test_requires_coevo_block(self):
        scenario = Scenario(
            name="no-coevo", benchmarks=("SASC",),
            lockers=(LockerSpec("era"),),
            attacks=(AttackSpec("majority", rounds=2),),
            samples=1, scale=0.1, seed=1)
        with pytest.raises(CoevoError, match="no 'coevo' block"):
            CoevoLoop(scenario)

    def test_kpa_fitness_needs_attacks(self):
        scenario = Scenario(
            name="no-attacks", benchmarks=("SASC",),
            lockers=(LockerSpec("era"),),
            metrics=(MetricSpec("avalanche"),),
            samples=1, scale=0.1, seed=1,
            coevo=CoevoSpec(algorithms=("era",)))
        with pytest.raises(CoevoError, match="attack"):
            CoevoLoop(scenario)

    def test_initial_population_is_seed_derived(self):
        loop_a = CoevoLoop(coevo_scenario())
        loop_b = CoevoLoop(coevo_scenario())
        assert loop_a.initial_population() == loop_b.initial_population()
        genomes = loop_a.initial_population()
        assert len(genomes) == 3
        for genome in genomes:
            assert genome.algorithm in ("era", "assure")
            assert 0.3 <= genome.fraction <= 0.9
            assert dict(genome.options)["mode"] in ("serial", "random")

    def test_generation_scenario_is_plain_and_labelled(self):
        loop = CoevoLoop(coevo_scenario())
        population = loop.initial_population()
        generated = loop.generation_scenario(0, population)
        assert generated.coevo is None
        assert generated.name == "coevo-unit-gen000"
        labels = [spec.label for spec in generated.lockers]
        assert len(set(labels)) == len(labels)
        # The loop appends the avalanche fitness metric when absent.
        assert any(metric.name == "avalanche"
                   for metric in generated.metrics)
        # Still a valid, expandable scenario (submittable to the server).
        assert generated.validate().expand()

    def test_labelled_records_keep_algorithm_seeds(self):
        # Two genomes of the same algorithm+fraction must produce identical
        # results regardless of their slot labels: seeds are algorithm-based.
        loop = CoevoLoop(coevo_scenario())
        genome = loop.initial_population()[0]
        scenario = loop.generation_scenario(0, [genome, genome])
        from repro.api import Runner
        records = Runner(scenario).run().records
        by_label = {}
        for record in records.values():
            stripped = {k: v for k, v in record.items()
                        if k not in ("job_id", "locker_label",
                                     "elapsed_seconds")}
            by_label.setdefault(record["locker_label"], []).append(stripped)
        (label_a, recs_a), (label_b, recs_b) = sorted(by_label.items())
        assert label_a != label_b
        assert recs_a == recs_b


class TestGoldenDeterminism:
    """The ISSUE's golden invariant: one history, three execution paths."""

    @pytest.fixture(scope="class")
    def serial_report(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("coevo-serial")
        return run_coevo(coevo_scenario(), store_root=root), root

    def test_process_backend_identical(self, serial_report, tmp_path):
        reference, _ = serial_report
        parallel = run_coevo(coevo_scenario(), store_root=tmp_path,
                             jobs=2, backend="process")
        assert parallel.history == reference.history
        assert parallel.best == reference.best

    def test_resume_from_half_complete_store_identical(self, serial_report,
                                                       tmp_path):
        reference, _ = serial_report
        # Build a half-complete store: full run, then drop the last
        # generation and half of the first generation's records.
        full = run_coevo(coevo_scenario(), store_root=tmp_path)
        shutil.rmtree(tmp_path / "gen-001")
        gen0_jobs = sorted((tmp_path / "gen-000" / "jobs").iterdir())
        for record_file in gen0_jobs[: len(gen0_jobs) // 2]:
            record_file.unlink()
        resumed = run_coevo(coevo_scenario(), store_root=tmp_path)
        assert resumed.history == reference.history
        assert resumed.best == reference.best
        assert 0 < resumed.executed_jobs < resumed.total_jobs
        assert full.history == resumed.history

    def test_history_file_matches_report(self, serial_report):
        reference, root = serial_report
        payload = json.loads((root / "coevo.json").read_text())
        assert payload["history"] == reference.history
        assert payload["best"] == reference.best
        assert payload["seed"] == 7
