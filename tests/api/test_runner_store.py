"""Runner + results store: serial/parallel equivalence, resume, aggregation."""

import json

import pytest

from repro.api import (
    AttackSpec,
    LockerSpec,
    MetricSpec,
    ResultsStore,
    Runner,
    Scenario,
    StoreError,
    execute_job,
)


def quick_scenario(**overrides):
    base = dict(
        name="runner-unit",
        benchmarks=("SASC",),
        lockers=(LockerSpec("assure"), LockerSpec("era")),
        attacks=(AttackSpec("snapshot", rounds=4, time_budget=0.5),),
        samples=1,
        scale=0.15,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


def strip_timing(record):
    record = dict(record)
    record.pop("elapsed_seconds", None)
    return record


class TestExecuteJob:
    def test_attack_record_shape(self):
        job = quick_scenario().expand()[0]
        record = execute_job(job)
        assert record["job_id"] == job.job_id
        assert record["kind"] == "attack"
        assert 0.0 <= record["result"]["kpa"] <= 100.0
        assert len(record["result"]["predicted_key"]) == record["key_width"]
        # Records must be JSON-clean end to end.
        json.dumps(record)

    def test_metric_record_shape(self):
        scenario = quick_scenario(
            attacks=(), metrics=(MetricSpec("avalanche", {"vectors": 4}),))
        record = execute_job(scenario.expand()[0])
        assert record["kind"] == "metric"
        assert record["metric"] == "avalanche"
        assert 0.0 <= record["result"]["mean"] <= 1.0
        json.dumps(record)

    def test_jobs_are_order_independent(self):
        jobs = quick_scenario(samples=2).expand()
        forward = [strip_timing(execute_job(job)) for job in jobs]
        backward = [strip_timing(execute_job(job)) for job in reversed(jobs)]
        assert forward == list(reversed(backward))


class TestRunner:
    def test_serial_run_covers_all_jobs(self):
        report = Runner(quick_scenario()).run()
        assert report.total == report.executed == 2
        assert report.skipped == 0
        assert set(report.average_kpa()) == {"assure", "era"}

    def test_parallel_matches_serial_bit_for_bit(self):
        scenario = quick_scenario(samples=2)
        serial = Runner(scenario, jobs=1).run()
        parallel = Runner(scenario, jobs=2).run()
        assert set(serial.records) == set(parallel.records)
        for job_id in serial.records:
            assert strip_timing(serial.records[job_id]) == \
                strip_timing(parallel.records[job_id])

    def test_progress_callback_fires_per_job(self):
        seen = []
        Runner(quick_scenario(),
               progress=lambda done, total, record:
               seen.append((done, total, record["kind"]))).run()
        assert seen == [(1, 2, "attack"), (2, 2, "attack")]

    def test_pair_table_requires_serial_run(self):
        from repro.locking import default_pair_table

        with pytest.raises(ValueError):
            Runner(quick_scenario(), jobs=2, pair_table=default_pair_table())

    def test_invalid_jobs_count(self):
        with pytest.raises(ValueError):
            Runner(quick_scenario(), jobs=0)

    def test_max_lanes_never_changes_records(self):
        """The memory knob tiles sweeps; records must stay bit-identical."""
        scenario = quick_scenario(lockers=(LockerSpec("era"),))
        unbounded = Runner(scenario).run()
        capped = Runner(scenario, max_lanes=16).run()
        via_scenario = Runner(quick_scenario(lockers=(LockerSpec("era"),),
                                             max_lanes=16)).run()
        for job_id in unbounded.records:
            reference = strip_timing(unbounded.records[job_id])
            assert strip_timing(capped.records[job_id]) == reference
            assert strip_timing(via_scenario.records[job_id]) == reference

    def test_rejects_nonpositive_max_lanes(self):
        with pytest.raises(ValueError):
            Runner(quick_scenario(), max_lanes=0)

    def test_matches_snapshot_experiment(self):
        """The runner reproduces the historical experiment bit for bit."""
        from repro.eval import ExperimentConfig, SnapShotExperiment

        config = ExperimentConfig(benchmarks=["SASC"],
                                  algorithms=("assure", "era"), scale=0.15,
                                  n_test_lockings=1, relock_rounds=4,
                                  automl_time_budget=0.5, seed=3)
        result = SnapShotExperiment(config).run()
        report = Runner(config.to_scenario()).run()
        assert result.average_kpa() == report.average_kpa()


class TestResumableStore:
    def test_second_run_executes_zero_jobs(self, tmp_path):
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        first = Runner(scenario, store=store).run()
        assert (first.executed, first.skipped) == (2, 0)
        second = Runner(scenario, store=store).run()
        assert (second.executed, second.skipped) == (0, 2)
        # Resumed records are the stored ones, bit for bit.
        for job_id, record in first.records.items():
            assert second.records[job_id] == record

    def test_partial_store_resumes_the_rest(self, tmp_path):
        scenario = quick_scenario(samples=2)
        store = ResultsStore(tmp_path / "store")
        jobs = scenario.expand()
        store.save(jobs[0].job_id, execute_job(jobs[0]))
        report = Runner(scenario, store=store).run()
        assert report.skipped == 1
        assert report.executed == len(jobs) - 1

    def test_no_resume_reexecutes(self, tmp_path):
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        Runner(scenario, store=store).run()
        report = Runner(scenario, store=store, resume=False).run()
        assert report.executed == 2 and report.skipped == 0

    def test_manifest_contents(self, tmp_path):
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        Runner(scenario, store=store).run()
        manifest = store.manifest()
        assert manifest["scenario"] == scenario.to_dict()
        assert manifest["scenario_fingerprint"] == scenario.fingerprint()
        assert manifest["total_records"] == 2
        assert {entry["job_id"] for entry in manifest["jobs"]} == \
            set(store.job_ids())
        assert store.scenario() == scenario

    def test_failed_jobs_do_not_discard_completed_ones(self, tmp_path):
        from repro.api import JobExecutionError, MetricSpec
        from repro.api.registry import METRICS, register_metric

        @register_metric("explode-test")
        def _explode(design, rng=None, **_):
            raise RuntimeError("boom")

        scenario = quick_scenario(
            attacks=(),
            metrics=(MetricSpec("avalanche", {"vectors": 4}),
                     MetricSpec("explode-test")))
        store = ResultsStore(tmp_path / "store")
        try:
            report = Runner(scenario, store=store, jobs=2).run()
        finally:
            METRICS.unregister("explode-test")
        # A RuntimeError is a permanent failure: quarantined, not raised —
        # the run degrades gracefully and reports the failures instead.
        assert len(report.failures) == 2
        assert all("explode-test" in entry["job_id"]
                   for entry in report.failures)
        assert all(entry["classification"] == "permanent"
                   for entry in report.failures)
        with pytest.raises(JobExecutionError, match="explode-test"):
            report.raise_for_failures()
        # The avalanche jobs completed and were committed; the failing jobs
        # landed in the ledger.
        committed = store.job_ids()
        assert len(committed) == 2
        assert all("avalanche" in job_id for job_id in committed)
        assert store.manifest()["total_records"] == 2
        assert set(store.failed_job_ids()) == \
            {entry["job_id"] for entry in report.failures}

    def test_resume_refuses_a_foreign_scenario_store(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        Runner(quick_scenario(seed=3), store=store).run()
        # Same job ids, different seed: resuming would mislabel old records.
        with pytest.raises(StoreError, match="different scenario"):
            Runner(quick_scenario(seed=4), store=store).run()

    def test_no_resume_overwrites_a_foreign_scenario_store(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        Runner(quick_scenario(seed=3), store=store).run()
        report = Runner(quick_scenario(seed=4), store=store,
                        resume=False).run()
        assert report.executed == 2
        assert store.scenario_stamp() == quick_scenario(seed=4).fingerprint()
        # Only the new scenario's records remain.
        assert {r["seed"] for r in store.records()} == {4}

    def test_store_error_paths(self, tmp_path):
        store = ResultsStore(tmp_path / "empty")
        with pytest.raises(StoreError):
            store.load("nope")
        with pytest.raises(StoreError):
            store.manifest()
        assert store.job_ids() == []

    def test_kpa_samples_from_store(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        Runner(quick_scenario(), store=store).run()
        samples = store.kpa_samples()
        assert {sample.algorithm for sample in samples} == {"assure", "era"}
        assert all(0.0 <= sample.value <= 100.0 for sample in samples)

    def test_figures_and_report_read_from_store(self, tmp_path):
        from repro.eval import experiment_report_from_store, figure6_from_store

        store = ResultsStore(tmp_path / "store")
        Runner(quick_scenario(), store=store).run()
        data = figure6_from_store(store)
        assert set(data.per_benchmark) == {"SASC"}
        assert set(data.average) == {"assure", "era"}
        report = experiment_report_from_store(store)
        assert "Average KPA" in report and "SASC" in report


class TestCostAwareScheduling:
    def test_chunks_dispatch_largest_first(self):
        from repro.api.runner import schedule_chunks

        scenario = quick_scenario(benchmarks=("SASC", "MD5"), samples=2)
        todo = list(enumerate(scenario.expand()))
        chunks = schedule_chunks(todo, workers=2)
        assert sorted(i for chunk in chunks for i in chunk) == \
            [i for i, _ in todo]
        by_index = dict(todo)
        totals = [sum(by_index[i].estimated_cost() for i in chunk)
                  for chunk in chunks]
        assert totals == sorted(totals, reverse=True)
        # MD5 is far larger than SASC, so its chunks lead the dispatch.
        assert by_index[chunks[0][0]].benchmark == "MD5"

    def test_chunks_preserve_benchmark_affinity(self):
        from repro.api.runner import schedule_chunks

        scenario = quick_scenario(benchmarks=("SASC", "MD5"), samples=4)
        todo = list(enumerate(scenario.expand()))
        by_index = dict(todo)
        for chunk in schedule_chunks(todo, workers=2):
            assert len({by_index[i].benchmark for i in chunk}) == 1

    def test_schedule_is_deterministic(self):
        from repro.api.runner import schedule_chunks

        scenario = quick_scenario(samples=3)
        todo = list(enumerate(scenario.expand()))
        assert schedule_chunks(todo, workers=2) == \
            schedule_chunks(todo, workers=2)

    def test_chunk_loads_are_balanced_not_concentrated(self):
        """A skewed budget sweep must spread its expensive points across
        chunks (greedy LPT), not slice them contiguously into one
        straggler chunk."""
        from repro.api import AttackSpec, LockerSpec, Scenario
        from repro.api.runner import schedule_chunks

        scenario = Scenario(
            name="skew", benchmarks=("SASC",), lockers=(LockerSpec("era"),),
            attacks=(AttackSpec("snapshot", rounds=4,
                                time_budgets=(1.0, 16.0)),),
            samples=8, scale=0.15)
        todo = list(enumerate(scenario.expand()))
        by_index = dict(todo)
        chunks = schedule_chunks(todo, workers=2)
        totals = [sum(by_index[i].estimated_cost() for i in chunk)
                  for chunk in chunks]
        assert len(totals) == 2
        # Perfect balance is possible here (8 heavy + 8 light jobs).
        assert max(totals) <= 1.25 * min(totals)

    def test_cost_scheduled_parallel_run_stays_bit_identical(self):
        scenario = quick_scenario(benchmarks=("SASC",), samples=2)
        serial = Runner(scenario, jobs=1).run()
        parallel = Runner(scenario, jobs=3).run()
        for job_id in serial.records:
            assert strip_timing(serial.records[job_id]) == \
                strip_timing(parallel.records[job_id])


class TestManifestCostData:
    def test_manifest_pairs_wall_time_with_estimate(self, tmp_path):
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        Runner(scenario, store=store).run()
        manifest = store.manifest()
        assert manifest["total_jobs"] == len(scenario.expand())
        by_id = {job.job_id: job for job in scenario.expand()}
        for summary in manifest["jobs"]:
            assert summary["elapsed_seconds"] > 0
            assert summary["estimated_cost"] == pytest.approx(
                by_id[summary["job_id"]].estimated_cost())

    def test_completion_states(self, tmp_path):
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        assert store.completion() is None  # nothing on disk at all
        Runner(scenario, store=store).run()
        assert store.completion() == {"records": 2, "total": 2,
                                      "complete": True}
        store.record_path(store.job_ids()[0]).unlink()
        completion = store.completion()
        assert completion["records"] == 1 and not completion["complete"]

    def test_completion_falls_back_to_the_stamp(self, tmp_path):
        """An interrupted run (no manifest) still knows its expected total."""
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        Runner(scenario, store=store).run()
        store.manifest_path.unlink()
        assert store.stamped_scenario() is not None
        assert store.completion() == {"records": 2, "total": 2,
                                      "complete": True}

    def test_corrupt_manifest_degrades_not_crashes(self, tmp_path):
        """A truncated manifest (killed mid-run before the atomic write
        existed) raises StoreError from manifest() and falls back to the
        stamp in completion() — so 'report' degrades instead of crashing."""
        scenario = quick_scenario()
        store = ResultsStore(tmp_path / "store")
        Runner(scenario, store=store).run()
        store.manifest_path.write_text('{"version": 1, "jobs": [tru')
        with pytest.raises(StoreError, match="corrupt manifest"):
            store.manifest()
        assert store.completion() == {"records": 2, "total": 2,
                                      "complete": True}
        from repro.eval import store_report

        report = store_report(store)
        assert "Average KPA" in report and "no manifest" in report


class TestFailureLedgerConcurrency:
    def test_concurrent_appends_never_interleave(self, tmp_path):
        """Parallel writers sharing one ledger produce only whole lines.

        Each entry is padded well past the stdio buffer so an unlocked
        append would issue several write syscalls — exactly the window the
        advisory ``flock`` in :meth:`ResultsStore.append_failure` closes.
        Every append opens its own file handle, so same-process threads
        contend on the lock the same way separate runner processes do.
        """
        import threading

        store = ResultsStore(tmp_path / "store")
        writers, per_writer = 8, 20
        padding = "x" * 200_000

        def append_entries(writer: int) -> None:
            for number in range(per_writer):
                store.append_failure({
                    "job_id": f"w{writer}-e{number}",
                    "failure": "crash",
                    "padding": padding,
                })

        threads = [threading.Thread(target=append_entries, args=(writer,))
                   for writer in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        entries = store.failures()
        assert len(entries) == writers * per_writer
        assert {entry["job_id"] for entry in entries} == {
            f"w{writer}-e{number}"
            for writer in range(writers) for number in range(per_writer)}
        # Raw check: every physical line is one complete JSON object.
        for line in store.failures_path.read_text().splitlines():
            assert json.loads(line)["failure"] == "crash"
