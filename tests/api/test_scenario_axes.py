"""Matrix axes: golden single-value expansion, sweeps, ordering, records."""

import json

import pytest

from repro.api import (
    AttackSpec,
    LockerSpec,
    MetricSpec,
    Scenario,
    ScenarioError,
    execute_job,
)
from repro.api.scenario import format_axis_value

# Golden run plan of a single-value (no matrix axes) scenario, pinned at the
# PR 3 semantics: (job_id, locker_seed, attack-or-metric stream seed).  The
# seeds are the literal crc32-derived values of the historical
# ``SnapShotExperiment`` formula — if this table changes, stored runs and the
# bit-identity with the legacy pipeline break.
GOLDEN_SINGLE_VALUE = [
    ("attack__SASC__assure__snapshot__s0", 1452977717, 1452977724),
    ("metric__SASC__assure__avalanche__s0", 1452977717, 1452985636),
    ("attack__SASC__assure__snapshot__s1", 1452978717, 1452978724),
    ("metric__SASC__assure__avalanche__s1", 1452978717, 1452986636),
    ("attack__SASC__era__snapshot__s0", 390701767, 390701774),
    ("metric__SASC__era__avalanche__s0", 390701767, 390709686),
    ("attack__SASC__era__snapshot__s1", 390702767, 390702774),
    ("metric__SASC__era__avalanche__s1", 390702767, 390710686),
    ("attack__FIR__assure__snapshot__s0", 1592369940, 1592369947),
    ("metric__FIR__assure__avalanche__s0", 1592369940, 1592377859),
    ("attack__FIR__assure__snapshot__s1", 1592370940, 1592370947),
    ("metric__FIR__assure__avalanche__s1", 1592370940, 1592378859),
    ("attack__FIR__era__snapshot__s0", 409168264, 409168271),
    ("metric__FIR__era__avalanche__s0", 409168264, 409176183),
    ("attack__FIR__era__snapshot__s1", 409169264, 409169271),
    ("metric__FIR__era__avalanche__s1", 409169264, 409177183),
]

#: Exact record key order of a single-value job, as written by PR 3 stores.
ATTACK_RECORD_KEYS = [
    "job_id", "kind", "benchmark", "locker", "sample", "seed", "scale",
    "key_budget", "num_operations", "key_width", "attack", "result",
    "elapsed_seconds",
]
METRIC_RECORD_KEYS = [
    "job_id", "kind", "benchmark", "locker", "sample", "seed", "scale",
    "key_budget", "num_operations", "key_width", "metric", "result",
    "elapsed_seconds",
]


def single_value_scenario(**overrides):
    base = dict(
        name="unit",
        benchmarks=("SASC", "FIR"),
        lockers=(LockerSpec("assure"), LockerSpec("era", 0.5)),
        attacks=(AttackSpec("snapshot", rounds=5, time_budget=1.0),),
        metrics=(MetricSpec("avalanche", {"vectors": 4}),),
        samples=2,
        scale=0.15,
        seed=9,
    )
    base.update(overrides)
    return Scenario(**base)


def matrix_scenario(**overrides):
    base = dict(
        name="matrix-unit",
        benchmarks=("SASC",),
        lockers=(LockerSpec("era", key_budget_fractions=(0.25, 0.75)),),
        attacks=(AttackSpec("snapshot", rounds=4,
                            time_budgets=(0.5, 2.0)),),
        samples=1,
        scale=0.15,
        seeds=(7, 11),
    )
    base.update(overrides)
    return Scenario(**base)


class TestGoldenSingleValueExpansion:
    """A scenario without axes must expand exactly as before axes existed."""

    def test_expansion_matches_golden_plan(self):
        jobs = single_value_scenario().expand()
        actual = [(job.job_id, job.locker_seed,
                   job.attack_seed if job.kind == "attack"
                   else job.metric_seed)
                  for job in jobs]
        assert actual == GOLDEN_SINGLE_VALUE

    def test_no_axes_on_single_value_jobs(self):
        assert all(job.axes == () for job in
                   single_value_scenario().expand())

    def test_to_dict_has_no_axis_fields(self):
        data = single_value_scenario().to_dict()
        assert "seeds" not in data
        assert all("key_budget_fractions" not in entry
                   for entry in data["lockers"])
        assert all("time_budgets" not in entry for entry in data["attacks"])

    def test_fingerprint_matches_pre_axes_dict(self):
        """The fingerprint of a single-value scenario is computed over the
        exact pre-axes dict, so PR 3 store stamps still resume."""
        scenario = single_value_scenario()
        legacy_dict = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(legacy_dict).fingerprint() == \
            scenario.fingerprint()

    def test_record_shape_is_byte_identical_to_pr3(self):
        scenario = single_value_scenario(
            benchmarks=("SASC",), lockers=(LockerSpec("era"),),
            attacks=(AttackSpec("snapshot", rounds=3, time_budget=0.5),),
            samples=1)
        attack_record = execute_job(scenario.expand()[0])
        assert list(attack_record) == ATTACK_RECORD_KEYS
        metric_record = execute_job(scenario.expand()[1])
        assert list(metric_record) == METRIC_RECORD_KEYS


class TestMatrixExpansion:
    def test_two_by_two_by_two_is_eight_jobs(self):
        scenario = matrix_scenario()
        attack_jobs = [job for job in scenario.expand()
                       if job.kind == "attack"]
        # 2 seeds x 2 key sizes x 2 budgets on a 1x1x1x1 base scenario.
        assert len(attack_jobs) == 8
        base = matrix_scenario(seeds=(), lockers=(LockerSpec("era", 0.75),),
                               attacks=(AttackSpec("snapshot", rounds=4,
                                                   time_budget=0.5),))
        assert len(attack_jobs) == 8 * len(base.expand())

    def test_job_ids_are_unique_and_tagged(self):
        jobs = matrix_scenario().expand()
        ids = [job.job_id for job in jobs]
        assert len(set(ids)) == len(ids)
        assert "attack__SASC__era__snapshot__s0__seed7__kb0.25__tb0.5" in ids
        assert "attack__SASC__era__snapshot__s0__seed11__kb0.75__tb2" in ids

    def test_expansion_order_is_stable(self):
        """The run plan is a pure function of the scenario: re-expansion and
        a JSON round-trip produce the identical ordered plan (this is the
        cross-platform stability contract — no hashing, no set iteration)."""
        scenario = matrix_scenario()
        first = [job.job_id for job in scenario.expand()]
        second = [job.job_id for job in scenario.expand()]
        reloaded = [job.job_id
                    for job in Scenario.from_json(scenario.to_json()).expand()]
        assert first == second == reloaded
        # Axis order within one cell: budget axis is innermost.
        assert first[0].endswith("__seed7__kb0.25__tb0.5")
        assert first[1].endswith("__seed7__kb0.25__tb2")

    def test_seed_axis_drives_job_seed(self):
        seeds = {job.seed for job in matrix_scenario().expand()}
        assert seeds == {7, 11}

    def test_budget_sweep_is_a_controlled_comparison(self):
        """Budget points share the attack stream; only the budget differs."""
        jobs = [job for job in matrix_scenario().expand()
                if job.kind == "attack" and job.seed == 7
                and job.locker.key_budget_fraction == 0.25]
        assert len(jobs) == 2
        assert jobs[0].attack_seed == jobs[1].attack_seed
        assert {job.attack.time_budget for job in jobs} == {0.5, 2.0}

    def test_key_size_sweep_shares_the_locking_stream(self):
        jobs = [job for job in matrix_scenario().expand()
                if job.kind == "attack" and job.seed == 7
                and job.attack.time_budget == 0.5]
        assert len(jobs) == 2
        assert jobs[0].locker_seed == jobs[1].locker_seed
        assert {job.locker.key_budget_fraction for job in jobs} == \
            {0.25, 0.75}

    def test_axes_recorded_on_jobs(self):
        job = matrix_scenario().expand()[0]
        assert job.axes == (("seed", 7), ("key_budget_fraction", 0.25),
                            ("time_budget", 0.5))

    def test_metric_jobs_sweep_seed_and_key_size_but_not_budget(self):
        scenario = matrix_scenario(
            metrics=(MetricSpec("avalanche", {"vectors": 4}),))
        metric_jobs = [job for job in scenario.expand()
                       if job.kind == "metric"]
        # 2 seeds x 2 key sizes (the locked design differs), no budget axis.
        assert len(metric_jobs) == 4
        assert all(dict(job.axes).keys() == {"seed", "key_budget_fraction"}
                   for job in metric_jobs)

    def test_axis_values_summary(self):
        assert matrix_scenario().axis_values() == {
            "seed": [7, 11],
            "key_budget_fraction": [0.25, 0.75],
            "time_budget": [0.5, 2.0],
        }
        assert single_value_scenario().axis_values() == {}


class TestAxisValidationAndRoundTrip:
    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            matrix_scenario(seeds=(7, 7))
        with pytest.raises(ScenarioError, match="duplicate"):
            LockerSpec("era", key_budget_fractions=(0.5, 0.5))
        with pytest.raises(ScenarioError, match="duplicate"):
            AttackSpec("snapshot", time_budgets=(1.0, 1.0))

    def test_axis_value_ranges_checked(self):
        with pytest.raises(ScenarioError, match="key_budget_fraction"):
            LockerSpec("era", key_budget_fractions=(0.5, 1.5))
        with pytest.raises(ScenarioError, match="time_budget"):
            AttackSpec("snapshot", time_budgets=(1.0, -1.0))

    def test_axis_values_colliding_in_job_id_tags_rejected(self):
        """Distinct floats that format to the same job-id tag would silently
        overwrite each other's store records — refused up front."""
        with pytest.raises(ScenarioError, match="same .*tag"):
            AttackSpec("snapshot", time_budgets=(1.0000001, 1.0000002))
        with pytest.raises(ScenarioError, match="same .*tag"):
            LockerSpec("era", key_budget_fractions=(1 / 3, 0.333333))

    def test_json_round_trip_preserves_axes(self):
        scenario = matrix_scenario()
        reloaded = Scenario.from_json(scenario.to_json())
        assert reloaded == scenario
        assert reloaded.fingerprint() == scenario.fingerprint()
        assert [job.job_id for job in reloaded.expand()] == \
            [job.job_id for job in scenario.expand()]

    def test_unknown_axis_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown locker field"):
            LockerSpec.from_dict({"algorithm": "era", "budgets": [0.5]})

    def test_format_axis_value(self):
        assert format_axis_value(7) == "7"
        assert format_axis_value(0.5) == "0.5"
        assert format_axis_value(4.0) == "4"


class TestEstimatedCost:
    def test_attack_cost_scales_with_rounds_budget_and_gates(self):
        def job_with(benchmark="SASC", rounds=4, budget=1.0):
            scenario = Scenario(
                name="cost", benchmarks=(benchmark,),
                lockers=(LockerSpec("era"),),
                attacks=(AttackSpec("snapshot", rounds=rounds,
                                    time_budget=budget),),
                samples=1, scale=0.15)
            return scenario.expand()[0]

        base = job_with().estimated_cost()
        assert base > 0
        assert job_with(rounds=8).estimated_cost() == pytest.approx(2 * base)
        assert job_with(budget=2.0).estimated_cost() == pytest.approx(2 * base)
        assert job_with(benchmark="MD5").estimated_cost() > base

    def test_metric_cost_uses_vectors_option(self):
        scenario = Scenario(
            name="cost", benchmarks=("SASC",), lockers=(LockerSpec("era"),),
            metrics=(MetricSpec("avalanche", {"vectors": 8}),
                     MetricSpec("corruption", {"vectors": 16})),
            samples=1, scale=0.15)
        small, large = scenario.expand()
        assert large.estimated_cost() == pytest.approx(
            2 * small.estimated_cost())
