"""Property test: every registry name is declaratively usable.

A component that registers but cannot be configured from scenario JSON —
or whose jobs cannot execute — is a plugin-system regression.  For every
name in the locker/attack/metric registries (aliases included) this suite
round-trips a scenario through JSON, expands it to jobs, and executes the
job end to end.
"""

import json

import pytest

from repro.api import ATTACKS, LOCKERS, METRICS, Scenario, execute_job

#: Cheap execution options per component kind; unknown keys are ignored by
#: factories, so one dict drives heterogeneous components.
_ATTACK_OPTIONS = {"rounds": 2, "time_budget": 0.2}
_METRIC_OPTIONS = {"vectors": 2}


def _shipped_names(registry):
    """Registry names whose factory lives in the ``repro`` package.

    Other test modules register throwaway components (e.g. a
    deliberately-crashing metric) at import time; those are theirs to
    exercise, not part of the shipped plugin surface this suite covers.
    """
    return sorted(
        name for name in registry.all_names()
        if registry.get(name).__module__.split(".")[0] == "repro")


def _scenario_dict(**overrides):
    data = {
        "name": "registry-roundtrip",
        "benchmarks": ["SASC"],
        "lockers": [{"algorithm": "era", "key_budget_fraction": 0.5}],
        "attacks": [],
        "metrics": [],
        "samples": 1,
        "scale": 0.1,
        "seed": 5,
    }
    data.update(overrides)
    return data


def _roundtrip(data):
    scenario = Scenario.from_dict(data)
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario
    jobs = scenario.expand()
    assert jobs, "scenario expanded to no jobs"
    return jobs


@pytest.mark.parametrize("name", _shipped_names(LOCKERS))
def test_locker_name_roundtrips_and_runs(name):
    jobs = _roundtrip(_scenario_dict(
        lockers=[{"algorithm": name, "key_budget_fraction": 0.5}],
        metrics=[{"name": "avalanche", "options": _METRIC_OPTIONS}]))
    record = execute_job(jobs[0])
    assert record["locker"] == name
    assert record["key_width"] >= 1


@pytest.mark.parametrize("name", _shipped_names(ATTACKS))
def test_attack_name_roundtrips_and_runs(name):
    jobs = _roundtrip(_scenario_dict(
        attacks=[dict(_ATTACK_OPTIONS, name=name)]))
    record = execute_job(jobs[0])
    assert record["attack"] == name
    assert 0.0 <= record["result"]["kpa"] <= 100.0


@pytest.mark.parametrize("name", _shipped_names(METRICS))
def test_metric_name_roundtrips_and_runs(name):
    jobs = _roundtrip(_scenario_dict(
        metrics=[{"name": name, "options": _METRIC_OPTIONS}]))
    record = execute_job(jobs[0])
    assert record["metric"] == name
    json.dumps(record)
