"""Component registries: registration, lookup, aliases, plug-in flow."""

import random

import pytest

from repro.api import (
    ATTACKS,
    LOCKERS,
    METRICS,
    Registry,
    UnknownComponentError,
    attack_names,
    locker_names,
    make_attack,
    make_locker,
    make_metric,
    metric_names,
    register_locker,
)


class TestBuiltins:
    def test_builtin_lockers_registered(self):
        names = locker_names()
        assert {"assure", "assure-random", "hra", "greedy", "era"} <= set(names)
        assert "assure-serial" in locker_names(include_aliases=True)

    def test_builtin_attacks_registered(self):
        names = attack_names()
        assert {"snapshot", "majority", "random", "pair-asymmetry"} <= set(names)

    def test_builtin_metrics_registered(self):
        names = metric_names()
        assert {"avalanche", "corruption", "key-sensitivity"} <= set(names)

    def test_make_locker_constructs_by_name(self):
        from repro.locking import AssureLocker, ERALocker

        rng = random.Random(0)
        assert isinstance(make_locker("era", rng), ERALocker)
        assert make_locker("assure", rng).selection == "serial"
        assert make_locker("assure-serial", rng).selection == "serial"
        assert make_locker("assure-random", rng).selection == "random"
        assert isinstance(make_locker("assure", rng), AssureLocker)

    def test_make_attack_constructs_by_name(self):
        from repro.attacks import MajorityVoteAttack, SnapShotAttack

        rng = random.Random(0)
        attack = make_attack("snapshot", rng, rounds=7, time_budget=2.0)
        assert isinstance(attack, SnapShotAttack)
        assert attack.rounds == 7 and attack.time_budget == 2.0
        assert isinstance(make_attack("majority", rng, rounds=3),
                          MajorityVoteAttack)

    def test_attack_factories_ignore_foreign_options(self):
        # One declarative options surface drives heterogeneous attacks.
        rng = random.Random(0)
        attack = make_attack("random", rng, rounds=9, time_budget=1.0,
                             feature_set="pair", functional_vectors=4)
        assert attack.attack is not None

    def test_make_metric_returns_callable(self):
        assert callable(make_metric("avalanche"))

    def test_unknown_names_raise_value_error(self):
        with pytest.raises(UnknownComponentError):
            make_locker("magic", random.Random(0))
        with pytest.raises(ValueError):
            make_attack("magic", random.Random(0))
        with pytest.raises(ValueError):
            make_metric("magic")

    def test_unknown_error_lists_registered_names(self):
        with pytest.raises(UnknownComponentError, match="era"):
            LOCKERS.get("nope")


class TestRegistryMechanics:
    def test_third_party_plugin_roundtrip(self):
        calls = []

        @register_locker("test-plugin-locker")
        def factory(rng, pair_table=None, track_metrics=False, **options):
            calls.append(options)
            return "locker-instance"

        try:
            assert "test-plugin-locker" in LOCKERS
            assert make_locker("test-plugin-locker", random.Random(0),
                               extra=1) == "locker-instance"
            assert calls == [{"extra": 1}]
        finally:
            LOCKERS.unregister("test-plugin-locker")
        assert "test-plugin-locker" not in LOCKERS

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", lambda: None)
        with pytest.raises(ValueError):
            registry.register("a", lambda: None)
        registry.register("a", lambda: "replaced", replace=True)
        assert registry.get("a")() == "replaced"

    def test_aliases_resolve_but_are_not_canonical(self):
        registry = Registry("thing")
        registry.register("canonical", lambda: 1, aliases=("alias",))
        assert registry.get("alias")() == 1
        assert registry.names() == ["canonical"]
        assert registry.all_names() == ["alias", "canonical"]
        registry.unregister("canonical")
        assert "alias" not in registry

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Registry("thing").register("", lambda: None)

    def test_registries_are_distinct(self):
        assert LOCKERS is not ATTACKS is not METRICS
        assert "snapshot" not in LOCKERS
        assert "era" not in ATTACKS
