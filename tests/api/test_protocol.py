"""Wire-format tests of the scenario-service protocol envelopes."""

import json

import pytest

from repro.api.protocol import (
    DETERMINISM_CLASSES,
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    Event,
    ProtocolError,
    Request,
    Response,
    decode_line,
    decode_request,
    decode_server_message,
    determinism_class,
    encode,
)
from repro.api.scenario import AttackSpec, LockerSpec, Scenario


def roundtrip(message):
    """Encode then decode one message the way the other side would."""
    wire = encode(message)
    assert wire.endswith(b"\n")
    assert b"\n" not in wire[:-1]  # one line is one message
    if isinstance(message, Request):
        return decode_request(wire)
    return decode_server_message(wire)


class TestEnvelopes:
    def test_request_roundtrip(self):
        request = Request(op="submit", id="req-1",
                          params={"scenario": {"name": "x"}})
        assert roundtrip(request) == request

    def test_success_response_roundtrip(self):
        response = Response.success("req-2", {"job_id": "job-0001"})
        decoded = roundtrip(response)
        assert decoded == response
        assert decoded.ok and decoded.error is None

    def test_failure_response_roundtrip(self):
        response = Response.failure("req-3", "UNKNOWN_JOB", "no job-9999")
        decoded = roundtrip(response)
        assert decoded == response
        assert not decoded.ok
        assert decoded.error == {"code": "UNKNOWN_JOB",
                                 "message": "no job-9999"}

    def test_event_roundtrip(self):
        event = Event(id="req-4", event="progress",
                      data={"done": 1, "total": 2})
        assert roundtrip(event) == event

    def test_event_and_response_are_disjoint_on_the_wire(self):
        # The client decoder dispatches on the field set alone.
        assert isinstance(decode_server_message(encode(
            Event(id="a", event="progress"))), Event)
        assert isinstance(decode_server_message(encode(
            Response.success("a", {}))), Response)

    def test_encode_is_compact_single_line_json(self):
        wire = encode(Request(op="ping", id="r",
                              params={"note": "line\nbreak"}))
        assert wire.count(b"\n") == 1  # embedded newlines stay escaped
        assert json.loads(wire) == {"op": "ping", "id": "r",
                                    "params": {"note": "line\nbreak"}}


class TestDecodeErrors:
    @pytest.mark.parametrize("line", ["not json", "[1, 2]", '"string"'])
    def test_non_object_lines_are_invalid_requests(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            decode_line(line)
        assert excinfo.value.code == "INVALID_REQUEST"

    def test_non_utf8_bytes_are_invalid(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_line(b"\xff\xfe{}")
        assert excinfo.value.code == "INVALID_REQUEST"

    @pytest.mark.parametrize("payload", [
        {},                                      # missing everything
        {"op": "ping"},                          # missing id
        {"op": "", "id": "r"},                   # empty op
        {"op": "ping", "id": 7},                 # non-string id
        {"op": "ping", "id": "r", "params": 3},  # non-object params
        {"op": "ping", "id": "r", "extra": 1},   # unknown field
    ])
    def test_malformed_request_envelopes(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(payload))
        assert excinfo.value.code == "INVALID_REQUEST"

    @pytest.mark.parametrize("payload", [
        {"id": "r"},                              # missing ok
        {"id": "r", "ok": "yes"},                 # non-boolean ok
        {"id": "r", "ok": False},                 # failure without error
        {"id": "r", "ok": False, "error": {"code": "X"}},  # no message
    ])
    def test_malformed_response_envelopes(self, payload):
        with pytest.raises(ProtocolError):
            decode_server_message(json.dumps(payload))

    def test_stale_response_ids_still_decode(self):
        # Correlation is the client's job; the decoder only checks shape.
        decoded = decode_server_message(encode(Response.success("other", {})))
        assert decoded.id == "other"


class TestProtocolError:
    def test_carries_canonical_code(self):
        error = ProtocolError("STORE_ERROR", "manifest unreadable")
        assert error.code == "STORE_ERROR"
        assert error.to_error() == {"code": "STORE_ERROR",
                                    "message": "manifest unreadable"}

    def test_rejects_unknown_codes(self):
        # Canonical codes are the compatibility contract — a typo must not
        # silently mint a new one.
        with pytest.raises(ValueError, match="canonical codes"):
            ProtocolError("NO_SUCH_CODE", "whatever")

    def test_expected_codes_are_canonical(self):
        for code in ("INVALID_SCENARIO", "UNKNOWN_JOB",
                     "BACKEND_UNAVAILABLE", "SHUTTING_DOWN"):
            assert code in ERROR_CODES

    def test_ops_and_version(self):
        assert PROTOCOL_VERSION == 1
        for op in ("submit", "status", "watch", "cancel", "report", "list",
                   "ping", "shutdown"):
            assert op in OPS


class TestDeterminismClass:
    def scenario(self, **attack_options):
        return Scenario(
            name="dc", benchmarks=("SASC",), lockers=(LockerSpec("era"),),
            attacks=(AttackSpec("snapshot", rounds=2, time_budget=0.5,
                                options=attack_options),),
            samples=1, scale=0.15, seed=0)

    def test_default_is_deterministic(self):
        assert determinism_class(self.scenario()) == "deterministic"

    def test_wall_clock_opt_out(self):
        tagged = determinism_class(self.scenario(deterministic=False))
        assert tagged == "wall_clock"

    def test_explicit_true_stays_deterministic(self):
        tagged = determinism_class(self.scenario(deterministic=True))
        assert tagged == "deterministic"

    def test_metric_only_scenario_is_deterministic(self):
        from repro.api.scenario import MetricSpec

        scenario = Scenario(name="m", benchmarks=("SASC",),
                            lockers=(LockerSpec("era"),), attacks=(),
                            metrics=(MetricSpec("avalanche"),),
                            samples=1, scale=0.15, seed=0)
        assert determinism_class(scenario) == "deterministic"

    def test_classes_are_closed(self):
        assert set(DETERMINISM_CLASSES) == {"deterministic", "wall_clock"}
