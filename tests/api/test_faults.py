"""The deterministic fault-injection harness (``repro.api.faults``).

A :class:`FaultPlan` must be a *pure function* of its seed and declaration —
same decisions in any process, any order, any number of calls — because the
chaos gate compares a faulted run against a fault-free one and blames any
divergence on the recovery paths, not the dice.
"""

import json

import pytest

from repro.api.faults import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedCrashError,
    InjectedTransientError,
    corrupt_record_file,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="gremlin")

    def test_rate_bounds(self):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultSpec(kind="crash", rate=1.5)
        with pytest.raises(FaultPlanError, match="rate"):
            FaultSpec(kind="crash", rate=-0.1)

    def test_seconds_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="seconds"):
            FaultSpec(kind="hang", seconds=0.0)

    def test_attempts_must_be_non_negative(self):
        with pytest.raises(FaultPlanError, match="attempts"):
            FaultSpec(kind="crash", attempts=(-1,))

    def test_dict_round_trip(self):
        spec = FaultSpec(kind="hang", rate=0.25, match="era",
                         attempts=(0, 1), seconds=5.0)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault field"):
            FaultSpec.from_dict({"kind": "crash", "probability": 0.5})
        with pytest.raises(FaultPlanError, match="needs a 'kind'"):
            FaultSpec.from_dict({"rate": 0.5})


class TestFaultPlanDraw:
    def test_draw_is_deterministic(self):
        plan = FaultPlan(seed=9, faults=(FaultSpec("crash", rate=0.3),))
        decisions = [plan.draw(f"job-{i}", 0) for i in range(50)]
        assert decisions == [plan.draw(f"job-{i}", 0) for i in range(50)]

    def test_rate_zero_never_fires_rate_one_always(self):
        never = FaultPlan(faults=(FaultSpec("crash", rate=0.0),))
        always = FaultPlan(faults=(FaultSpec("crash", rate=1.0),))
        assert all(never.draw(f"j{i}", 0) is None for i in range(20))
        assert all(always.draw(f"j{i}", 0) is not None for i in range(20))

    def test_partial_rate_hits_roughly_its_share(self):
        plan = FaultPlan(seed=5, faults=(FaultSpec("crash", rate=0.2),))
        hits = sum(plan.draw(f"job-{i}", 0) is not None for i in range(500))
        assert 50 <= hits <= 150  # ~20 % of 500, generous bounds

    def test_match_filters_by_job_id_substring(self):
        plan = FaultPlan(faults=(FaultSpec("crash", match="era"),))
        assert plan.draw("attack__SASC__era__snapshot__s0", 0) is not None
        assert plan.draw("attack__SASC__assure__snapshot__s0", 0) is None

    def test_attempts_filter(self):
        plan = FaultPlan(faults=(FaultSpec("crash", attempts=(0,)),))
        assert plan.draw("job", 0) is not None
        assert plan.draw("job", 1) is None

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(faults=(FaultSpec("transient", match="era"),
                                 FaultSpec("slow", seconds=1.0)))
        hit = plan.draw("metric__era__x", 0)
        assert hit is not None and hit.kind == "transient"
        other = plan.draw("metric__assure__x", 0)
        assert other is not None and other.kind == "slow"

    def test_seed_changes_the_decisions(self):
        spec = FaultSpec("crash", rate=0.5)
        a = [FaultPlan(seed=1, faults=(spec,)).draw(f"j{i}", 0) is not None
             for i in range(50)]
        b = [FaultPlan(seed=2, faults=(spec,)).draw(f"j{i}", 0) is not None
             for i in range(50)]
        assert a != b


class TestFaultPlanApply:
    def test_transient_raises(self):
        plan = FaultPlan(faults=(FaultSpec("transient"),))
        with pytest.raises(InjectedTransientError):
            plan.apply("job", 0)

    def test_crash_in_process_raises_instead_of_exiting(self):
        plan = FaultPlan(faults=(FaultSpec("crash"),))
        with pytest.raises(InjectedCrashError):
            plan.apply("job", 0, in_worker=False)

    def test_corrupt_is_commit_side_only(self):
        plan = FaultPlan(faults=(FaultSpec("corrupt"),))
        plan.apply("job", 0)  # no pre-execution effect
        assert plan.corrupts("job", 0)
        assert not FaultPlan().corrupts("job", 0)

    def test_no_fault_is_a_noop(self):
        FaultPlan().apply("job", 0)


class TestFaultPlanIO:
    def test_dict_round_trip(self):
        plan = FaultPlan(seed=3, faults=(FaultSpec("crash", rate=0.2),
                                         FaultSpec("slow", seconds=0.5)))
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan field"):
            FaultPlan.from_dict({"seed": 1, "chaos": True})

    def test_from_file(self, tmp_path):
        path = tmp_path / "faults.json"
        plan = FaultPlan(seed=3, faults=(FaultSpec("transient", rate=0.5),))
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_file(path) == plan

    def test_from_file_errors(self, tmp_path):
        with pytest.raises(FaultPlanError, match="does not exist"):
            FaultPlan.from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError, match="invalid fault-plan JSON"):
            FaultPlan.from_file(bad)
        array = tmp_path / "array.json"
        array.write_text("[]")
        with pytest.raises(FaultPlanError, match="must be an object"):
            FaultPlan.from_file(array)


class TestCorruptRecordFile:
    def test_truncates_to_unparseable_json(self, tmp_path):
        path = tmp_path / "record.json"
        path.write_text(json.dumps({"job_id": "x", "result": [1, 2, 3]},
                                   indent=2) + "\n")
        corrupt_record_file(path)
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())
