"""Fault-tolerance integration: the chaos gate, quarantine, and resume.

The headline guarantee of the robustness layer, exercised end-to-end with
the deterministic fault harness: a run suffering injected worker crashes,
transient errors and corrupt writes must *converge* — with an adequate
retry budget its store is bit-identical (modulo measured wall time) to a
fault-free serial run; past the budget a poison job is quarantined to the
``failures.jsonl`` ledger, skipped on resume, surfaced in reports — and
never silently dropped.
"""

import pytest

from repro.api import (
    AttackSpec,
    LockerSpec,
    MetricSpec,
    ResultsStore,
    Runner,
    Scenario,
)
from repro.api.faults import FaultPlan, FaultSpec


def quick_scenario(**overrides):
    base = dict(
        name="chaos-unit",
        benchmarks=("SASC",),
        lockers=(LockerSpec("assure"), LockerSpec("era")),
        attacks=(AttackSpec("snapshot", rounds=4, time_budget=0.5),),
        samples=1,
        scale=0.15,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


def stable_records(report) -> dict:
    """Records keyed by job id, with the measured wall time removed."""
    return {job_id: {k: v for k, v in record.items()
                     if k != "elapsed_seconds"}
            for job_id, record in report.records.items()}


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial records of the chaos scenario (shared, read-only)."""
    report = Runner(quick_scenario()).run()
    assert not report.failures
    return stable_records(report)


class TestChaosGate:
    """Faulted runs converge bit-identically to the fault-free baseline."""

    # Transient faults limited to early attempts, so retries=3 always wins;
    # rate < 1 leaves some jobs untouched (both paths exercised).
    PLAN = FaultPlan(seed=7, faults=(
        FaultSpec("crash", rate=0.5, attempts=(0,)),
        FaultSpec("transient", rate=0.4, attempts=(0, 1)),
    ))

    def test_serial_backend_converges(self, baseline, tmp_path):
        report = Runner(quick_scenario(), store=ResultsStore(tmp_path / "s"),
                        backend="serial", retries=3,
                        fault_plan=self.PLAN).run()
        assert not report.failures
        assert stable_records(report) == baseline

    def test_process_backend_converges(self, baseline, tmp_path):
        store = ResultsStore(tmp_path / "s")
        report = Runner(quick_scenario(), store=store, jobs=3, retries=3,
                        backend="process", fault_plan=self.PLAN).run()
        assert not report.failures
        assert stable_records(report) == baseline
        # The store agrees with the in-memory report, and nothing poisoned
        # the ledger.
        assert set(store.job_ids()) == set(baseline)
        assert not store.failures_path.exists()

    def test_deterministic_backoff_keeps_records_identical(self, baseline,
                                                           tmp_path):
        """Two faulted runs of the same plan produce the same store."""
        first = Runner(quick_scenario(), retries=3,
                       fault_plan=self.PLAN).run()
        second = Runner(quick_scenario(), retries=3,
                        fault_plan=self.PLAN).run()
        assert stable_records(first) == stable_records(second) == baseline


class TestQuarantine:
    # A fault with no attempt filter: this job never succeeds.
    POISON = FaultPlan(seed=1, faults=(
        FaultSpec("transient", rate=1.0, match="era"),))

    def test_poison_job_is_quarantined_not_dropped(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        report = Runner(quick_scenario(), store=store, retries=1,
                        fault_plan=self.POISON).run()
        # The healthy job committed; the poison one is ledgered.
        assert report.executed == 1
        assert [e["job_id"] for e in report.failures] == \
            ["attack__SASC__era__snapshot__s0"]
        entry = report.failures[0]
        assert entry["attempts"] == 2  # retries=1 -> two attempts burned
        assert entry["classification"] == "transient"
        assert "InjectedTransientError" in entry["error"]
        assert list(store.failed_job_ids()) == [entry["job_id"]]
        # The manifest names the quarantined jobs.
        assert store.manifest()["quarantined_jobs"] == [entry["job_id"]]

    def test_resume_skips_known_poison(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        Runner(quick_scenario(), store=store, retries=1,
               fault_plan=self.POISON).run()
        report = Runner(quick_scenario(), store=store, retries=1,
                        fault_plan=self.POISON).run()
        assert report.executed == 0 and report.skipped == 1
        assert report.quarantined == 1
        assert report.failures[0]["skipped"] is True

    def test_raising_retries_reexecutes_quarantined_jobs(self, tmp_path):
        store = ResultsStore(tmp_path / "s")
        Runner(quick_scenario(), store=store, retries=1,
               fault_plan=self.POISON).run()
        # Higher budget than the ledgered attempt count -> re-execute; with
        # the faults gone the job completes and leaves the ledger.
        report = Runner(quick_scenario(), store=store, retries=3).run()
        assert not report.failures and report.quarantined == 0
        assert report.executed == 1 and report.skipped == 1
        assert not store.failures_path.exists()
        assert len(store.job_ids()) == 2

    def test_permanent_failure_skips_the_retry_budget(self, tmp_path):
        from repro.api.registry import METRICS, register_metric

        @register_metric("poison-permanent-test")
        def _poison(design, rng=None, **_):
            raise RuntimeError("deterministic bug")

        scenario = quick_scenario(
            attacks=(), metrics=(MetricSpec("poison-permanent-test"),))
        try:
            report = Runner(scenario, retries=5).run()
        finally:
            METRICS.unregister("poison-permanent-test")
        # A RuntimeError is permanent: one attempt, then quarantine.
        assert all(e["attempts"] == 1 for e in report.failures)
        assert all(e["classification"] == "permanent"
                   for e in report.failures)


class TestCorruptWriteFault:
    def test_corrupt_record_composes_with_resume_without_double_count(
            self, tmp_path, baseline):
        """A corrupt-on-write fault leaves the PR 6 discard path to recover
        the record; the ledger never sees the job and nothing is counted
        twice."""
        plan = FaultPlan(seed=2, faults=(
            FaultSpec("corrupt", rate=1.0, match="assure"),))
        store = ResultsStore(tmp_path / "s")
        first = Runner(quick_scenario(), store=store, fault_plan=plan).run()
        # The writer believed the write worked: no failures, full report.
        assert not first.failures and first.executed == 2
        assert not store.failures_path.exists()
        # But the record on disk is truncated; resume discards + re-executes
        # exactly that job (no fault plan now — the machine was "repaired").
        resumed = Runner(quick_scenario(), store=store).run()
        assert resumed.executed == 1 and resumed.skipped == 1
        assert stable_records(resumed) == baseline
        assert not store.failures_path.exists()
        assert store.manifest()["total_records"] == 2


class TestProcessTimeouts:
    def test_hung_worker_is_detected_and_retried(self, tmp_path):
        """A hang past ``job_timeout`` kills the worker; the retry (where
        the fault no longer strikes) completes the job."""
        plan = FaultPlan(seed=4, faults=(
            FaultSpec("hang", rate=1.0, match="era", attempts=(0,),
                      seconds=30.0),))
        scenario = quick_scenario(attacks=(),
                                  metrics=(MetricSpec("avalanche",
                                                      {"vectors": 4}),))
        store = ResultsStore(tmp_path / "s")
        report = Runner(scenario, store=store, jobs=2, backend="process",
                        retries=1, job_timeout=1.0, fault_plan=plan).run()
        assert not report.failures
        assert report.executed == 2
        assert len(store.job_ids()) == 2

    def test_hang_past_the_budget_lands_in_the_ledger(self, tmp_path):
        plan = FaultPlan(seed=4, faults=(
            FaultSpec("hang", rate=1.0, match="era", seconds=30.0),))
        scenario = quick_scenario(attacks=(),
                                  metrics=(MetricSpec("avalanche",
                                                      {"vectors": 4}),))
        store = ResultsStore(tmp_path / "s")
        report = Runner(scenario, store=store, jobs=2, backend="process",
                        retries=0, job_timeout=1.0, fault_plan=plan).run()
        assert [e["job_id"] for e in report.failures] == \
            ["metric__SASC__era__avalanche__s0"]
        assert report.failures[0]["failure"] == "timeout"
        # The healthy job still committed.
        assert report.executed == 1


class TestRunnerProgressHook:
    def test_raising_progress_hook_does_not_abort_the_run(self, tmp_path,
                                                          caplog):
        """Regression: a buggy observer must cost log lines, not records."""
        store = ResultsStore(tmp_path / "s")
        calls = []

        def bad_hook(done, total, record):
            calls.append(done)
            raise RuntimeError("observer bug")

        with caplog.at_level("WARNING"):
            report = Runner(quick_scenario(), store=store,
                            progress=bad_hook).run()
        assert report.executed == 2 and not report.failures
        assert calls == [1, 2]
        assert "progress hook raised" in caplog.text
        # The resume path's hook is guarded too.
        with caplog.at_level("WARNING"):
            resumed = Runner(quick_scenario(), store=store,
                             progress=bad_hook).run()
        assert resumed.skipped == 2


class TestScenarioRobustnessFields:
    def test_fields_are_fingerprint_stable_when_unset(self):
        """``retries``/``job_timeout``/``backend`` are run defaults, not job
        data: omitting them must reproduce the historical fingerprint."""
        plain = quick_scenario()
        assert "retries" not in plain.to_dict()
        assert "job_timeout" not in plain.to_dict()
        assert "backend" not in plain.to_dict()
        tuned = quick_scenario(retries=2, job_timeout=60.0, backend="serial")
        assert tuned.to_dict()["retries"] == 2
        assert tuned.fingerprint() != plain.fingerprint()
        round_trip = Scenario.from_dict(tuned.to_dict())
        assert round_trip.retries == 2
        assert round_trip.job_timeout == 60.0
        assert round_trip.backend == "serial"

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            quick_scenario(retries=-1)
        with pytest.raises(ValueError, match="job_timeout"):
            quick_scenario(job_timeout=0.0)
        with pytest.raises(ValueError, match="backend"):
            quick_scenario(backend="quantum").validate()
