"""Doc coverage: the public API surface must be fully docstringed.

``repro.api`` is the facade third parties build on and ``docs/`` links into
its docstrings; an undocumented public symbol is a doc regression, so this
is enforced as a test rather than a review convention.
"""

import importlib
import inspect

import pytest

#: Modules whose module docstring and public defs are checked.
DOCUMENTED_MODULES = [
    "repro.api",
    "repro.api.registry",
    "repro.api.scenario",
    "repro.api.runner",
    "repro.api.store",
    "repro.api.backends",
    "repro.api.faults",
    "repro.sim",
]


def public_symbols(module):
    for name in getattr(module, "__all__", None) or vars(module):
        if name.startswith("_"):
            continue
        value = getattr(module, name)
        if inspect.isfunction(value) or inspect.isclass(value):
            # Only symbols defined in this package, not re-exported stdlib.
            if (getattr(value, "__module__", "") or "").startswith("repro"):
                yield name, value


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), \
        f"module {module_name} has no docstring"


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_every_public_symbol_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    missing = [name for name, value in public_symbols(module)
               if not (value.__doc__ and value.__doc__.strip())]
    assert not missing, \
        f"public symbols of {module_name} without docstrings: {missing}"


def test_every_api_export_resolves_and_is_documented():
    """Every name in ``repro.api.__all__`` (including the lazily resolved
    ones) must resolve and carry a docstring."""
    import repro.api as api

    for name in api.__all__:
        value = getattr(api, name)
        if inspect.isfunction(value) or inspect.isclass(value):
            assert value.__doc__ and value.__doc__.strip(), \
                f"repro.api.{name} has no docstring"


@pytest.mark.parametrize("module_name", ["repro.api.scenario",
                                         "repro.api.runner",
                                         "repro.api.store",
                                         "repro.api.backends",
                                         "repro.api.faults"])
def test_public_methods_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for class_name, cls in public_symbols(module):
        if not inspect.isclass(cls):
            continue
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            func = member.fget if isinstance(member, property) else member
            if not inspect.isfunction(func):
                continue
            if not (func.__doc__ and func.__doc__.strip()):
                missing.append(f"{class_name}.{name}")
    assert not missing, \
        f"public methods of {module_name} without docstrings: {missing}"
