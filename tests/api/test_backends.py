"""Executor backends: registry, retry policy, failure classification.

The backend seam itself — backends own *mechanism* (where jobs run, how
losses are detected), the runner owns *policy* — plus the fault-tolerance
primitives layered on top: deterministic backoff, transient-vs-permanent
classification, and the serial backend's post-hoc timeout semantics.
End-to-end fault behaviour (chaos convergence, quarantine, the ledger)
lives in ``test_fault_injection.py``.
"""

import pytest

from repro.api import (
    AttackSpec,
    LockerSpec,
    ResultsStore,
    Runner,
    Scenario,
)
from repro.api.backends import (
    ExecutorBackend,
    JobOutcome,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    TRANSIENT_ERROR_NAMES,
    backend_names,
    classify_failure,
    exception_name_from_traceback,
    make_backend,
    register_backend,
    register_transient_error,
    _BACKENDS,
)


def quick_scenario(**overrides):
    base = dict(
        name="backend-unit",
        benchmarks=("SASC",),
        lockers=(LockerSpec("assure"), LockerSpec("era")),
        attacks=(AttackSpec("snapshot", rounds=4, time_budget=0.5),),
        samples=1,
        scale=0.15,
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert set(backend_names()) >= {"serial", "process"}
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process"), ProcessPoolBackend)

    def test_unknown_backend_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_backend("quantum")

    def test_register_backend_makes_the_name_selectable(self):
        @register_backend("null-test")
        class NullBackend(ExecutorBackend):
            def run_round(self, round_):
                for chunk in round_.chunks:
                    for index in chunk:
                        round_.emit(JobOutcome(
                            index=index, job_id=round_.jobs[index].job_id,
                            attempt=round_.attempts.get(index, 0),
                            kind="error", error="RuntimeError: null backend"))

        try:
            assert "null-test" in backend_names()
            backend = make_backend("null-test")
            assert backend.name == "null-test"
            # Selectable through the runner; every job fails permanently.
            report = Runner(quick_scenario(), backend="null-test").run()
            assert report.executed == 0
            assert len(report.failures) == 2
        finally:
            del _BACKENDS["null-test"]

    def test_runner_accepts_a_backend_instance(self):
        report = Runner(quick_scenario(), backend=SerialBackend()).run()
        assert report.executed == 2 and not report.failures

    def test_scenario_backend_field_selects_the_backend(self, tmp_path):
        scenario = quick_scenario(backend="serial")
        report = Runner(scenario, store=ResultsStore(tmp_path / "s")).run()
        assert report.executed == 2 and not report.failures

    def test_pair_table_requires_the_serial_backend(self):
        with pytest.raises(ValueError, match="serial"):
            Runner(quick_scenario(), pair_table=object(),
                   backend="process").run()


class TestRetryPolicy:
    def test_attempts_is_retries_plus_one(self):
        assert RetryPolicy().attempts == 1
        assert RetryPolicy(retries=3).attempts == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError, match="backoff_cap"):
            RetryPolicy(backoff_base=2.0, backoff_cap=1.0)

    def test_delay_is_deterministic_and_jittered(self):
        policy = RetryPolicy(retries=5, backoff_base=0.5, seed=11)
        first = policy.delay("job-a", 1)
        assert first == policy.delay("job-a", 1)
        # Jitter keeps the delay in [base/2, base].
        assert 0.25 <= first <= 0.5
        # Different jobs de-synchronise.
        assert policy.delay("job-a", 1) != policy.delay("job-b", 1)
        # Exponential growth, capped.
        assert policy.delay("job-a", 2) <= 1.0
        capped = RetryPolicy(retries=9, backoff_base=0.5, backoff_cap=1.0,
                             seed=11)
        assert capped.delay("job-a", 8) <= 1.0

    def test_no_delay_before_the_first_attempt(self):
        assert RetryPolicy(retries=2).delay("job", 0) == 0.0

    def test_zero_base_means_no_backoff(self):
        assert RetryPolicy(retries=2, backoff_base=0.0).delay("job", 2) == 0.0


class TestClassification:
    def test_crash_and_timeout_are_always_transient(self):
        assert classify_failure("crash") == "transient"
        assert classify_failure("timeout", "whatever text") == "transient"

    def test_error_classification_by_exception_name(self):
        transient = ("Traceback (most recent call last):\n"
                     '  File "x.py", line 1, in f\n'
                     "ConnectionResetError: peer went away\n")
        permanent = ("Traceback (most recent call last):\n"
                     '  File "x.py", line 1, in f\n'
                     "RuntimeError: boom\n")
        assert classify_failure("error", transient) == "transient"
        assert classify_failure("error", permanent) == "permanent"

    def test_qualified_exception_names_are_stripped(self):
        error = ("Traceback (most recent call last):\n"
                 "concurrent.futures.process.BrokenProcessPool: "
                 "A process in the process pool was terminated\n")
        assert exception_name_from_traceback(error) == "BrokenProcessPool"
        assert classify_failure("error", error) == "transient"

    def test_unrecognisable_text_is_permanent(self):
        assert exception_name_from_traceback("segfault, probably") == ""
        assert classify_failure("error", "segfault, probably") == "permanent"

    def test_register_transient_error_extends_the_set(self):
        name = register_transient_error("FlakyOracleTestError")
        try:
            assert classify_failure(
                "error", "FlakyOracleTestError: oracle away") == "transient"
        finally:
            TRANSIENT_ERROR_NAMES.discard(name)

    def test_transient_job_error_subclasses_classify_transient(self):
        # The documented opt-in: raise TransientJobError from a component.
        assert "TransientJobError" in TRANSIENT_ERROR_NAMES
        assert classify_failure(
            "error", "TransientJobError: try again") == "transient"


class TestSerialTimeout:
    def test_overdue_job_is_discarded_post_hoc(self):
        """The serial backend cannot pre-empt, so a job finishing over
        budget is failed as ``timeout`` — the SLA holds on every backend."""
        from repro.api import MetricSpec
        from repro.api.registry import METRICS, register_metric

        @register_metric("slow-serial-test")
        def _slow(design, rng=None, **_):
            import time

            time.sleep(0.2)
            return {"ok": True}

        scenario = quick_scenario(attacks=(),
                                  metrics=(MetricSpec("slow-serial-test"),))
        try:
            report = Runner(scenario, job_timeout=0.05).run()
        finally:
            METRICS.unregister("slow-serial-test")
        assert report.executed == 0
        assert len(report.failures) == 2
        assert all(entry["failure"] == "timeout"
                   for entry in report.failures)
        # Timeouts are transient: with retries they burn the whole budget.
        assert all(entry["classification"] == "transient"
                   for entry in report.failures)


class TestRunnerValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            Runner(quick_scenario(), retries=-1)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError, match="job_timeout"):
            Runner(quick_scenario(), job_timeout=0.0)

    def test_retries_and_retry_policy_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Runner(quick_scenario(), retries=1,
                   retry_policy=RetryPolicy(retries=1))
