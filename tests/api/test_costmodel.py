"""Cost-model calibration: ms-per-unit fits from manifest timing pairs."""

import pytest

from repro.api import (
    CostModel,
    fit_cost_model,
    fit_cost_model_from_pairs,
    fit_cost_model_from_store,
)


class TestFit:
    def test_exact_linear_pairs_recover_the_slope(self):
        # 2 ms per unit, exactly.
        model = fit_cost_model_from_pairs([(2.0, 1000.0), (1.0, 500.0)])
        assert model is not None
        assert model.ms_per_unit == pytest.approx(2.0)
        assert model.jobs == 2
        assert model.total_elapsed == pytest.approx(3.0)
        assert model.total_cost == pytest.approx(1500.0)

    def test_fit_weights_long_jobs(self):
        """Least squares through the origin: the big job dominates."""
        model = fit_cost_model_from_pairs([(10.0, 1000.0), (1.0, 10.0)])
        assert model is not None
        big_only = 10.0 / 1000.0 * 1000.0
        assert model.ms_per_unit == pytest.approx(big_only, rel=0.02)

    def test_unusable_pairs_are_skipped(self):
        model = fit_cost_model_from_pairs(
            [(None, 100.0), (1.0, None), (1.0, 0.0), (-1.0, 100.0),
             (3.0, 1500.0)])
        assert model is not None
        assert model.jobs == 1
        assert model.ms_per_unit == pytest.approx(2.0)

    def test_no_usable_pairs_returns_none(self):
        assert fit_cost_model_from_pairs([]) is None
        assert fit_cost_model_from_pairs([(None, None), (1.0, 0.0)]) is None

    def test_predict_seconds(self):
        model = CostModel(ms_per_unit=2.0, jobs=1, total_elapsed=1.0,
                          total_cost=500.0)
        assert model.predict_seconds(3000.0) == pytest.approx(6.0)
        assert model.predict_seconds(0.0) == 0.0

    def test_fit_from_manifest_dict(self):
        manifest = {"jobs": [
            {"job_id": "a", "elapsed_seconds": 4.0, "estimated_cost": 2000.0},
            {"job_id": "b", "elapsed_seconds": 2.0, "estimated_cost": 1000.0},
            {"job_id": "c", "elapsed_seconds": 9.9, "estimated_cost": None},
        ]}
        model = fit_cost_model(manifest)
        assert model is not None
        assert model.jobs == 2
        assert model.ms_per_unit == pytest.approx(2.0)

    def test_fit_from_manifest_without_jobs(self):
        assert fit_cost_model({}) is None


class TestRecalibrationFromPartialRun:
    """Refitting from a quarantine-containing manifest skips failed jobs.

    Only committed records get ``jobs`` summaries in the manifest (a
    quarantined job has no record, hence no ``elapsed_seconds``/
    ``estimated_cost`` pair), so a fit over a partial run is exactly a fit
    over the successful jobs — never polluted by failures.
    """

    def partial_store(self, tmp_path):
        from repro.api import (AttackSpec, LockerSpec, ResultsStore, Runner,
                               Scenario)
        from repro.api.faults import FaultPlan, FaultSpec

        scenario = Scenario(
            name="calib-partial", benchmarks=("SASC",),
            lockers=(LockerSpec("assure"), LockerSpec("era")),
            attacks=(AttackSpec("snapshot", rounds=4, time_budget=0.5),),
            samples=1, scale=0.15, seed=3)
        # The era job never succeeds: one attempt, then quarantine.
        poison = FaultPlan(seed=1, faults=(
            FaultSpec("transient", rate=1.0, match="era"),))
        store = ResultsStore(tmp_path / "partial")
        report = Runner(scenario, store=store, retries=0,
                        fault_plan=poison).run()
        assert report.executed == 1 and len(report.failures) == 1
        return store

    def test_fit_covers_only_successful_jobs(self, tmp_path):
        from repro.api import fit_cost_model_from_store

        store = self.partial_store(tmp_path)
        manifest = store.manifest()
        assert manifest["quarantined_jobs"] == \
            ["attack__SASC__era__snapshot__s0"]
        summarised = {entry["job_id"] for entry in manifest["jobs"]}
        assert "attack__SASC__era__snapshot__s0" not in summarised

        model = fit_cost_model_from_store(store)
        assert model is not None
        assert model.jobs == 1  # the quarantined job contributed nothing
        assert model.ms_per_unit > 0.0

    def test_fit_matches_successful_jobs_only_fit(self, tmp_path):
        from repro.api import fit_cost_model, fit_cost_model_from_pairs

        store = self.partial_store(tmp_path)
        manifest = store.manifest()
        pairs = [(entry.get("elapsed_seconds"), entry.get("estimated_cost"))
                 for entry in manifest["jobs"]]
        by_hand = fit_cost_model_from_pairs(pairs)
        refit = fit_cost_model(manifest)
        assert refit is not None and by_hand is not None
        assert refit.ms_per_unit == pytest.approx(by_hand.ms_per_unit)
        assert refit.jobs == by_hand.jobs

    def test_fully_quarantined_manifest_yields_no_model(self, tmp_path):
        from repro.api import (AttackSpec, LockerSpec, ResultsStore, Runner,
                               Scenario, fit_cost_model_from_store)
        from repro.api.faults import FaultPlan, FaultSpec

        scenario = Scenario(
            name="calib-empty", benchmarks=("SASC",),
            lockers=(LockerSpec("era"),),
            attacks=(AttackSpec("snapshot", rounds=4, time_budget=0.5),),
            samples=1, scale=0.15, seed=3)
        poison = FaultPlan(seed=1, faults=(FaultSpec("transient", rate=1.0),))
        store = ResultsStore(tmp_path / "allbad")
        report = Runner(scenario, store=store, retries=0,
                        fault_plan=poison).run()
        assert report.executed == 0 and len(report.failures) == 1
        # No successful job, no timing pair, no model — not a crash.
        assert fit_cost_model_from_store(store) is None


class TestFitFromStore:
    def test_store_without_manifest_returns_none(self, tmp_path):
        from repro.api import ResultsStore

        assert fit_cost_model_from_store(ResultsStore(tmp_path)) is None

    def test_store_with_manifest(self, tmp_path):
        import json

        from repro.api import ResultsStore

        store = ResultsStore(tmp_path / "store")
        store.root.mkdir(parents=True)
        store.manifest_path.write_text(json.dumps({"jobs": [
            {"elapsed_seconds": 1.0, "estimated_cost": 500.0}]}))
        model = fit_cost_model_from_store(store)
        assert model is not None
        assert model.ms_per_unit == pytest.approx(2.0)
