"""Cost-model calibration: ms-per-unit fits from manifest timing pairs."""

import pytest

from repro.api import (
    CostModel,
    fit_cost_model,
    fit_cost_model_from_pairs,
    fit_cost_model_from_store,
)


class TestFit:
    def test_exact_linear_pairs_recover_the_slope(self):
        # 2 ms per unit, exactly.
        model = fit_cost_model_from_pairs([(2.0, 1000.0), (1.0, 500.0)])
        assert model is not None
        assert model.ms_per_unit == pytest.approx(2.0)
        assert model.jobs == 2
        assert model.total_elapsed == pytest.approx(3.0)
        assert model.total_cost == pytest.approx(1500.0)

    def test_fit_weights_long_jobs(self):
        """Least squares through the origin: the big job dominates."""
        model = fit_cost_model_from_pairs([(10.0, 1000.0), (1.0, 10.0)])
        assert model is not None
        big_only = 10.0 / 1000.0 * 1000.0
        assert model.ms_per_unit == pytest.approx(big_only, rel=0.02)

    def test_unusable_pairs_are_skipped(self):
        model = fit_cost_model_from_pairs(
            [(None, 100.0), (1.0, None), (1.0, 0.0), (-1.0, 100.0),
             (3.0, 1500.0)])
        assert model is not None
        assert model.jobs == 1
        assert model.ms_per_unit == pytest.approx(2.0)

    def test_no_usable_pairs_returns_none(self):
        assert fit_cost_model_from_pairs([]) is None
        assert fit_cost_model_from_pairs([(None, None), (1.0, 0.0)]) is None

    def test_predict_seconds(self):
        model = CostModel(ms_per_unit=2.0, jobs=1, total_elapsed=1.0,
                          total_cost=500.0)
        assert model.predict_seconds(3000.0) == pytest.approx(6.0)
        assert model.predict_seconds(0.0) == 0.0

    def test_fit_from_manifest_dict(self):
        manifest = {"jobs": [
            {"job_id": "a", "elapsed_seconds": 4.0, "estimated_cost": 2000.0},
            {"job_id": "b", "elapsed_seconds": 2.0, "estimated_cost": 1000.0},
            {"job_id": "c", "elapsed_seconds": 9.9, "estimated_cost": None},
        ]}
        model = fit_cost_model(manifest)
        assert model is not None
        assert model.jobs == 2
        assert model.ms_per_unit == pytest.approx(2.0)

    def test_fit_from_manifest_without_jobs(self):
        assert fit_cost_model({}) is None


class TestFitFromStore:
    def test_store_without_manifest_returns_none(self, tmp_path):
        from repro.api import ResultsStore

        assert fit_cost_model_from_store(ResultsStore(tmp_path)) is None

    def test_store_with_manifest(self, tmp_path):
        import json

        from repro.api import ResultsStore

        store = ResultsStore(tmp_path / "store")
        store.root.mkdir(parents=True)
        store.manifest_path.write_text(json.dumps({"jobs": [
            {"elapsed_seconds": 1.0, "estimated_cost": 500.0}]}))
        model = fit_cost_model_from_store(store)
        assert model is not None
        assert model.ms_per_unit == pytest.approx(2.0)
