"""Sanity checks on the public API surface of every subpackage."""

import importlib

import pytest

import repro

SUBPACKAGES = ["verilog", "rtlir", "locking", "ml", "attacks", "bench",
               "eval", "api"]


class TestPublicApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_importable(self, name):
        module = importlib.import_module(f"repro.{name}")
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(f"repro.{name}")
        exported = getattr(module, "__all__", [])
        assert exported, f"repro.{name} must export a public API"
        for symbol in exported:
            assert hasattr(module, symbol), f"repro.{name}.{symbol} missing"

    def test_headline_classes_reachable_from_top_level_packages(self):
        from repro.attacks import SnapShotAttack
        from repro.bench import load_benchmark
        from repro.locking import AssureLocker, ERALocker, HRALocker
        from repro.rtlir import Design

        assert callable(load_benchmark)
        for cls in (SnapShotAttack, AssureLocker, ERALocker, HRALocker, Design):
            assert isinstance(cls, type)

    def test_cli_parser_builds(self):
        from repro.cli import build_parser
        parser = build_parser()
        commands = {"analyze", "lock", "attack", "bench", "evaluate", "run"}
        help_text = parser.format_help()
        for command in commands:
            assert command in help_text

    def test_api_facade_reachable(self):
        from repro.api import (Runner, ResultsStore, Scenario,
                               register_attack, register_locker,
                               register_metric)

        for obj in (Runner, ResultsStore, Scenario):
            assert isinstance(obj, type)
        for decorator in (register_attack, register_locker, register_metric):
            assert callable(decorator)
