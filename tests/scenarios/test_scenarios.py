"""Declarative scenario-case suite (hwsim idiom).

Every ``cases/*.json`` file is one named pytest parameter run through the
shared :func:`run_scenario_case` helper (see ``conftest.py`` for the case
schema).  New axis combinations get regression coverage by dropping a JSON
file into ``cases/`` — no new test code.
"""

from __future__ import annotations

import json

import pytest

from .conftest import CASES_DIR

CASE_FILES = sorted(CASES_DIR.glob("*.json"))


def test_case_suite_is_populated():
    """The suite stays meaningful: at least 25 declarative cases."""
    assert len(CASE_FILES) >= 25


def test_case_names_are_unique_and_descriptive():
    descriptions = {}
    for path in CASE_FILES:
        case = json.loads(path.read_text())
        description = case.get("description", "")
        assert description, f"{path.name} lacks a description"
        assert description not in descriptions.values(), \
            f"{path.name} duplicates the description of another case"
        descriptions[path.name] = description


@pytest.mark.parametrize("case_path", CASE_FILES,
                         ids=[path.stem for path in CASE_FILES])
def test_scenario_case(case_path, run_scenario_case):
    run_scenario_case(case_path)
