"""Shared runner helper of the declarative scenario-case suite.

The hwsim idiom: one parameterised helper executes every small named JSON
case under ``cases/``, so adding regression coverage for a new axis
combination is a one-file change.  Each case file holds a complete
scenario, optional runner/fault configuration, and the store-level
invariants to assert:

```json
{
  "description": "what this case pins down",
  "scenario": { ... complete Scenario dict ... },
  "backend": "serial",            // optional pin; else env/auto
  "runner": {"jobs": 2, "retries": 1},   // optional Runner kwargs
  "fault_plan": { ... FaultPlan dict ... },
  "coevo": true,                  // run the co-evolution loop instead
  "expect": {
    "jobs": 6,                    // expanded JobSpec count
    "determinism": "deterministic",
    "records": 6,                 // default: jobs - quarantined
    "quarantined": 0,             // default: 0
    "complete": true,             // default: quarantined == 0
    "kpa": {"min": 0, "max": 100, "mean_min": 0, "mean_max": 100},
    "metrics": {"avalanche": {"field": "mean", "min": 0, "max": 1}},
    "resume_executes": 0,         // default: 0
    "generations": 2,             // coevo cases: history length
    "best_fitness_min": 0.0       // coevo cases: winner sanity bound
  }
}
```

A case may instead declare ``"expect_error": "substring"`` to pin a
validation failure.

Environment knobs (the CI scenario-matrix job):

* ``SCENARIO_CASE_BACKEND`` — default backend for cases that do not pin
  one (the suite runs once per backend in CI).
* ``SCENARIO_CASE_STORE_ROOT`` — persistent store root instead of
  ``tmp_path``, so per-case store manifests can be uploaded as artifacts.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Callable, Dict, Optional

import pytest

from repro.api import Runner, ResultsStore, Scenario, ScenarioError
from repro.api.coevo import run_coevo
from repro.api.faults import FaultPlan
from repro.api.protocol import determinism_class

CASES_DIR = Path(__file__).parent / "cases"

#: Runner keyword arguments a case file may set.
_RUNNER_KEYS = ("jobs", "retries", "job_timeout", "max_lanes")


def _case_store(case_name: str, tmp_path: Path) -> Path:
    root = os.environ.get("SCENARIO_CASE_STORE_ROOT")
    if root:
        store = Path(root) / case_name
        shutil.rmtree(store, ignore_errors=True)
        return store
    return tmp_path / case_name


def _check_bounds(value: float, bounds: Dict, what: str) -> None:
    if "min" in bounds:
        assert value >= bounds["min"] - 1e-9, \
            f"{what} {value} below bound {bounds['min']}"
    if "max" in bounds:
        assert value <= bounds["max"] + 1e-9, \
            f"{what} {value} above bound {bounds['max']}"


def _run_plain_case(case: Dict, scenario: Scenario, store_root: Path,
                    backend: Optional[str]) -> None:
    expect = case.get("expect", {})
    jobs = scenario.expand()
    if "jobs" in expect:
        assert len(jobs) == expect["jobs"], \
            f"expanded {len(jobs)} job(s), case expects {expect['jobs']}"
    if "determinism" in expect:
        assert determinism_class(scenario) == expect["determinism"]

    runner_kwargs = {key: value
                     for key, value in case.get("runner", {}).items()
                     if key in _RUNNER_KEYS}
    unknown = set(case.get("runner", {})) - set(_RUNNER_KEYS)
    assert not unknown, f"unknown runner key(s) in case: {sorted(unknown)}"
    fault_plan = (FaultPlan.from_dict(case["fault_plan"])
                  if case.get("fault_plan") else None)

    store = ResultsStore(store_root)
    report = Runner(scenario, store=store, backend=backend,
                    fault_plan=fault_plan, **runner_kwargs).run()

    quarantined = expect.get("quarantined", 0)
    assert len(report.failures) == quarantined, \
        (f"{len(report.failures)} quarantined job(s), case expects "
         f"{quarantined}: {[f.get('job_id') for f in report.failures]}")
    expected_records = expect.get("records", len(jobs) - quarantined)
    assert len(report.records) == expected_records

    # Store-level invariants: the manifest exists and agrees with the run.
    assert store.manifest_path.exists()
    completion = store.completion()
    assert completion is not None
    assert completion["records"] == expected_records
    assert completion["complete"] == expect.get("complete", quarantined == 0)

    if "kpa" in expect:
        kpas = [record["result"]["kpa"]
                for record in report.records.values()
                if record["kind"] == "attack"]
        assert kpas, "case asserts KPA bounds but produced no attack records"
        for value in kpas:
            _check_bounds(value, expect["kpa"], "kpa")
        mean = sum(kpas) / len(kpas)
        _check_bounds(mean, {k[len("mean_"):]: v
                             for k, v in expect["kpa"].items()
                             if k.startswith("mean_")}, "mean kpa")
    for metric_name, bounds in expect.get("metrics", {}).items():
        values = [record["result"][bounds.get("field", "mean")]
                  for record in report.records.values()
                  if record.get("metric") == metric_name]
        assert values, f"no records for metric {metric_name!r}"
        for value in values:
            _check_bounds(value, bounds, f"metric {metric_name}")

    # Resume invariant: a second run replays from the store (quarantined
    # jobs stay skipped) and serves bit-identical records.
    resumed = Runner(scenario, store=store, backend=backend,
                     fault_plan=fault_plan, **runner_kwargs).run()
    assert resumed.executed == expect.get("resume_executes", 0)
    assert resumed.records == report.records


def _run_coevo_case(case: Dict, scenario: Scenario, store_root: Path,
                    backend: Optional[str]) -> None:
    expect = case.get("expect", {})
    jobs = case.get("runner", {}).get("jobs", 1)
    report = run_coevo(scenario, store_root=store_root, jobs=jobs,
                       backend=backend)
    generations = expect.get("generations",
                             scenario.coevo.generations)
    assert len(report.history) == generations
    for entry in report.history:
        assert len(entry["population"]) == scenario.coevo.population
    assert report.best is not None
    if "best_fitness_min" in expect:
        assert report.best["fitness"] >= expect["best_fitness_min"]
    history_path = store_root / "coevo.json"
    assert history_path.exists()

    # Resume invariant: replaying the loop over the same stores executes
    # nothing new and reproduces the identical history.
    resumed = run_coevo(scenario, store_root=store_root, jobs=jobs,
                        backend=backend)
    assert resumed.executed_jobs == 0
    assert resumed.history == report.history
    assert resumed.best == report.best


@pytest.fixture
def run_scenario_case(tmp_path: Path) -> Callable[[Path], None]:
    """Execute one declarative case file and assert its invariants."""

    def run(case_path: Path) -> None:
        case = json.loads(case_path.read_text())
        assert case.get("description"), \
            f"{case_path.name} needs a 'description'"

        if "expect_error" in case:
            with pytest.raises(ScenarioError) as excinfo:
                Scenario.from_dict(case["scenario"])
            assert case["expect_error"] in str(excinfo.value), \
                (f"error {str(excinfo.value)!r} does not mention "
                 f"{case['expect_error']!r}")
            return

        scenario = Scenario.from_dict(case["scenario"])
        # A case that pins its backend keeps it; the CI matrix env var
        # drives everything else.
        backend = case.get("backend") \
            or os.environ.get("SCENARIO_CASE_BACKEND") or None
        store_root = _case_store(case_path.stem, tmp_path)
        if case.get("coevo"):
            _run_coevo_case(case, scenario, store_root, backend)
        else:
            _run_plain_case(case, scenario, store_root, backend)

    return run
