"""Test package marker (enables package-relative imports of conftest helpers)."""
