"""Common-subexpression elimination and dead-step pruning in compile_plan.

Both passes are pure plan-shape optimisations: the compiled closures must
produce values bit-identical to the unoptimised plan and to the scalar
oracle on every design, while the plan itself gets smaller (dead steps) or
cheaper (shared subtrees evaluated once per pass).
"""

import random

import pytest

from repro.bench import load_benchmark
from repro.locking import ERALocker
from repro.rtlir import Design
from repro.sim import (
    BatchSimulator,
    CombinationalSimulator,
    batch_to_vectors,
    compile_plan,
    random_input_batch,
)

CSE_HEAVY = """
module cse_heavy (input [7:0] a, input [7:0] b, input [7:0] c,
                  output [8:0] x, output [8:0] y, output [8:0] z);
  wire [8:0] t = (a + b) ^ c;
  assign x = (a + b) ^ c;
  assign y = (a + b) + ((a + b) ^ c);
  assign z = t & (a + b);
endmodule
"""

DEAD_LOGIC = """
module dead_logic (input [7:0] a, input [7:0] b, output [8:0] y);
  wire [8:0] used = a + b;
  wire [8:0] unused1 = a * b;
  wire [8:0] unused2 = unused1 ^ a;
  assign y = used;
endmodule
"""


def _cross_check(design, vectors=12, seed=0, key=None):
    plain = BatchSimulator(design, plan=compile_plan(design, cse=False,
                                                     prune=False))
    optimised = BatchSimulator(design, plan=compile_plan(design))
    scalar = CombinationalSimulator(design, engine="ast")
    batch = random_input_batch(design, random.Random(seed), vectors)
    expected = plain.run_batch(batch, key=key, n=vectors)
    actual = optimised.run_batch(batch, key=key, n=vectors)
    assert actual == expected
    for lane, vector in enumerate(batch_to_vectors(batch, vectors)):
        reference = scalar.run(vector, key=key)
        for name, value in reference.items():
            assert actual[name][lane] == value


class TestSharedSubexpressions:
    def test_repeated_subtrees_are_hoisted(self):
        design = Design.from_verilog(CSE_HEAVY)
        plan = compile_plan(design)
        # (a + b) recurs four times and ((a + b) ^ c) twice.
        assert plan.stats.cse_steps >= 2
        names = [name for name, _, _ in plan.steps]
        assert any(name.startswith("$cse") for name in names)

    def test_cse_outputs_bit_identical(self):
        _cross_check(Design.from_verilog(CSE_HEAVY))

    def test_cse_slots_never_reported_as_outputs(self):
        design = Design.from_verilog(CSE_HEAVY)
        simulator = BatchSimulator(design)
        assert all(not name.startswith("$cse")
                   for name in simulator.output_names)

    def test_cse_disabled_plan_has_no_slots(self):
        design = Design.from_verilog(CSE_HEAVY)
        plan = compile_plan(design, cse=False)
        assert plan.stats.cse_steps == 0
        assert all(not name.startswith("$cse")
                   for name, _, _ in plan.steps)

    def test_era_locked_design_exercises_cse(self):
        design = load_benchmark("MD5", scale=0.15, seed=0)
        budget = max(1, int(0.75 * design.num_operations()))
        locked = ERALocker(rng=random.Random(0),
                           track_metrics=False).lock(design, budget).design
        plan = compile_plan(locked)
        assert plan.stats.cse_steps > 0
        _cross_check(locked, key=locked.correct_key, seed=1)


class TestDeadStepPruning:
    def test_unreferenced_steps_are_dropped(self):
        design = Design.from_verilog(DEAD_LOGIC)
        plan = compile_plan(design)
        names = {name for name, _, _ in plan.steps}
        assert "unused1" not in names and "unused2" not in names
        assert plan.stats.pruned_steps == 2

    def test_pruning_keeps_outputs_identical(self):
        _cross_check(Design.from_verilog(DEAD_LOGIC))

    def test_prune_disabled_keeps_every_step(self):
        design = Design.from_verilog(DEAD_LOGIC)
        plan = compile_plan(design, prune=False)
        names = {name for name, _, _ in plan.steps}
        assert {"used", "unused1", "unused2", "y"} <= names
        assert plan.stats.pruned_steps == 0

    def test_transitive_liveness_is_preserved(self):
        design = Design.from_verilog("""
        module chain (input [3:0] a, output [3:0] y);
          wire [3:0] s0 = a + 1;
          wire [3:0] s1 = s0 ^ 3;
          wire [3:0] s2 = s1 & 7;
          assign y = s2;
        endmodule
        """)
        plan = compile_plan(design)
        names = [name for name, _, _ in plan.steps]
        assert names == ["s0", "s1", "s2", "y"]
        assert plan.stats.pruned_steps == 0

    def test_live_cse_slot_of_dead_user_is_pruned(self):
        design = Design.from_verilog("""
        module partial (input [7:0] a, input [7:0] b, output [8:0] y);
          wire [8:0] dead1 = (a * b) + 1;
          wire [8:0] dead2 = (a * b) + 2;
          assign y = a + b;
        endmodule
        """)
        plan = compile_plan(design)
        # (a * b) is shared, but only by dead steps: slot and users all go.
        names = [name for name, _, _ in plan.steps]
        assert names == ["y"]


@pytest.mark.parametrize("profile", ["MD5", "FIR", "SASC", "DFT", "IIR"])
def test_seed_profiles_bit_identical_with_optimised_plans(profile):
    design = load_benchmark(profile, scale=0.15, seed=0)
    _cross_check(design, vectors=8, seed=2)
