"""Tests for the combinational simulator and the locking functional contract."""

import random

import pytest

from repro.bench import plus_network, profile_design
from repro.bench.profiles import BenchmarkProfile
from repro.locking import AssureLocker, ERALocker, HRALocker, flip_bits
from repro.rtlir import Design
from repro.sim import (
    CombinationalSimulator,
    SimulationError,
    check_equivalence,
    output_corruption,
)

ADDER_SOURCE = """
module adder (
  input [7:0] a,
  input [7:0] b,
  input [7:0] c,
  output [7:0] sum,
  output [7:0] mixed,
  output gt
);
  wire [7:0] s0 = a + b;
  wire [7:0] s1 = s0 + c;
  assign sum = s1;
  assign mixed = (s0 ^ c) & 8'h7F;
  assign gt = a > b;
endmodule
"""


@pytest.fixture
def adder_design():
    return Design.from_verilog(ADDER_SOURCE, name="adder")


class TestSimulatorBasics:
    def test_outputs_computed_correctly(self, adder_design):
        simulator = CombinationalSimulator(adder_design)
        outputs = simulator.run({"a": 10, "b": 20, "c": 5})
        assert outputs["sum"] == 35
        assert outputs["mixed"] == ((30 ^ 5) & 0x7F)
        assert outputs["gt"] == 0

    def test_values_wrap_at_declared_width(self, adder_design):
        simulator = CombinationalSimulator(adder_design)
        outputs = simulator.run({"a": 0xFF, "b": 0x02, "c": 0})
        assert outputs["sum"] == 0x01

    def test_missing_inputs_default_to_zero(self, adder_design):
        simulator = CombinationalSimulator(adder_design)
        assert simulator.run({"a": 7})["sum"] == 7

    def test_unknown_input_rejected(self, adder_design):
        simulator = CombinationalSimulator(adder_design)
        with pytest.raises(SimulationError):
            simulator.run({"zz": 1})

    def test_input_output_names(self, adder_design):
        simulator = CombinationalSimulator(adder_design)
        assert simulator.input_names == ["a", "b", "c"]
        assert set(simulator.output_names) == {"sum", "mixed", "gt"}

    def test_dependency_cycle_detected(self):
        design = Design.from_verilog("""
        module loop (input [3:0] a, output [3:0] y);
          wire [3:0] u;
          wire [3:0] v = u + a;
          assign u = v + 1;
          assign y = v;
        endmodule
        """)
        with pytest.raises(SimulationError):
            CombinationalSimulator(design)

    def test_random_vector_respects_widths(self, adder_design, rng):
        simulator = CombinationalSimulator(adder_design)
        vector = simulator.random_vector(rng)
        assert set(vector) == {"a", "b", "c"}
        assert all(0 <= value < 256 for value in vector.values())

    def test_benchmark_design_simulates(self):
        design = plus_network(12, n_inputs=4, name="plus12")
        simulator = CombinationalSimulator(design)
        outputs = simulator.run({"in0": 1, "in1": 2, "in2": 3, "in3": 4})
        assert "out" in outputs


class TestLockingFunctionalContract:
    @pytest.mark.parametrize("locker_factory", [
        lambda rng: AssureLocker("serial", rng=rng, track_metrics=False),
        lambda rng: AssureLocker("random", rng=rng, track_metrics=False),
        lambda rng: HRALocker(rng=rng, track_metrics=False),
        lambda rng: ERALocker(rng=rng, track_metrics=False),
    ], ids=["assure-serial", "assure-random", "hra", "era"])
    def test_correct_key_restores_function(self, adder_design, locker_factory):
        locked = locker_factory(random.Random(3)).lock(adder_design, 5)
        report = check_equivalence(adder_design, locked.design,
                                   key=locked.design.correct_key,
                                   vectors=40, rng=random.Random(1))
        assert report.equivalent, report.first_mismatch

    def test_wrong_key_corrupts_outputs(self, adder_design):
        locked = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False).lock(adder_design, 5)
        correct = locked.design.correct_key
        wrong = flip_bits(correct, range(len(correct)))
        rate = output_corruption(locked.design, correct, wrong,
                                 vectors=40, rng=random.Random(2))
        assert rate > 0.5

    def test_single_flipped_bit_changes_behaviour(self, adder_design):
        locked = AssureLocker("serial", rng=random.Random(1),
                              track_metrics=False).lock(adder_design, 4)
        correct = locked.design.correct_key
        wrong = flip_bits(correct, [0])
        report = check_equivalence(adder_design, locked.design, key=wrong,
                                   vectors=40, rng=random.Random(3))
        assert not report.equivalent

    def test_relocked_design_still_unlocks_with_full_key(self, adder_design):
        first = AssureLocker("serial", rng=random.Random(0),
                             track_metrics=False).lock(adder_design, 3)
        second = AssureLocker("random", rng=random.Random(1),
                              track_metrics=False).relock(first.design, 3)
        report = check_equivalence(adder_design, second.design,
                                   key=second.design.correct_key,
                                   vectors=30, rng=random.Random(4))
        assert report.equivalent

    def test_constant_locking_preserves_function(self, rng):
        design = Design.from_verilog("""
        module c (input [7:0] a, output [7:0] y);
          assign y = (a + 8'd37) ^ 8'h0F;
        endmodule
        """)
        from repro.locking import AssureLocker
        locked = AssureLocker(rng=rng).lock_constants(design, max_constants=2)
        report = check_equivalence(design, locked.design,
                                   key=locked.design.correct_key,
                                   vectors=30, rng=random.Random(5))
        assert report.equivalent

    def test_locked_profile_benchmark_equivalence(self):
        profile = BenchmarkProfile("sim_prof", "simulatable profile",
                                   {"+": 6, "-": 3, "^": 4, "&": 2, "<<": 2},
                                   sequential=False, n_inputs=4)
        design = profile_design(profile, seed=7)
        locked = ERALocker(rng=random.Random(2), track_metrics=False).lock(
            design, key_budget=8)
        report = check_equivalence(design, locked.design,
                                   key=locked.design.correct_key,
                                   vectors=25, rng=random.Random(6))
        assert report.equivalent, report.first_mismatch
