"""Sweep value-numbering in the executor: hoisted sweeps stay bit-identical.

``run_sweep`` with hoisting (the default on VN-compiled plans) must be
indistinguishable from the flat S×V evaluation and from the per-key
``run_batch`` loop — for key sweeps, shared-key (avalanche-shape) sweeps,
binding sweeps and their combinations.  The vectorised lane packers are
pinned against their set-bit-loop counterparts as well.
"""

import random

import pytest

from repro.bench import load_benchmark, plus_network
from repro.locking import AssureLocker, ERALocker
from repro.sim import BatchSimulator, compile_plan, pack_values, unpack_values
from repro.sim.plan.executor import (
    _FAST_PACK_LANES,
    _pack_point_values,
    _pack_swept_keys,
    classify_steps,
    sweep_schedule,
)
from repro.sim.vectors import random_key, random_vector_batch
from repro.sim.evaluator import SimulationError, mask


def _locked(name="I2C_SL", algorithm="era", scale=0.25, seed=0):
    design = load_benchmark(name, scale=scale, seed=seed)
    budget = max(1, int(0.75 * design.num_operations()))
    locker = ERALocker(rng=random.Random(seed), track_metrics=False) \
        if algorithm == "era" else \
        AssureLocker("serial", rng=random.Random(seed), track_metrics=False)
    return locker.lock(design, budget).design


class TestHoistedKeySweeps:
    @pytest.mark.parametrize("name", ["I2C_SL", "SASC", "MD5"])
    def test_hoisted_equals_flat_equals_loop(self, name):
        locked = _locked(name)
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(1), 16)
        keys = [random_key(locked.key_width, random.Random(2))
                for _ in range(12)]
        hoisted = simulator.run_sweep(batch, keys=keys, n=16, hoist=True)
        flat = simulator.run_sweep(batch, keys=keys, n=16, hoist=False)
        loop = [simulator.run_batch(batch, key=key, n=16) for key in keys]
        assert hoisted == flat == loop

    def test_default_follows_the_plan_toggle(self):
        locked = _locked()
        vn_plan = compile_plan(locked)
        legacy_plan = compile_plan(locked, sweep_vn=False)
        assert vn_plan.sweep_hoist and not legacy_plan.sweep_hoist
        batch = BatchSimulator(locked, plan=vn_plan).random_batch(
            random.Random(3), 8)
        keys = [random_key(locked.key_width, random.Random(4))
                for _ in range(6)]
        assert BatchSimulator(locked, plan=vn_plan).run_sweep(
            batch, keys=keys, n=8) \
            == BatchSimulator(locked, plan=legacy_plan).run_sweep(
                batch, keys=keys, n=8)

    def test_wide_sweep_exercises_fast_packers(self):
        """512 base lanes × 8 points crosses every vectorised threshold."""
        locked = _locked("SASC")
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(5), 512)
        keys = [random_key(locked.key_width, random.Random(6))
                for _ in range(8)]
        hoisted = simulator.run_sweep(batch, keys=keys, n=512, hoist=True)
        flat = simulator.run_sweep(batch, keys=keys, n=512, hoist=False)
        assert hoisted == flat
        spot = simulator.run_batch(batch, key=keys[3], n=512)
        assert hoisted[3] == spot


class TestSharedKeyAndBindingSweeps:
    def test_identical_keys_hoist_the_key_cone(self):
        """The avalanche shape: same key on every point, one probed input."""
        locked = _locked()
        simulator = BatchSimulator(locked)
        signals = [(name, simulator.width_of(name))
                   for name in simulator.input_names
                   if name != locked.key_port]
        probe = signals[0][0]
        context = random_vector_batch(signals[1:], random.Random(7), 8)
        bindings = [{probe: value} for value in (0, 1, 5, 255)]
        keys = [locked.correct_key] * len(bindings)
        hoisted = simulator.run_sweep(context, keys=keys, bindings=bindings,
                                      n=8, hoist=True)
        flat = simulator.run_sweep(context, keys=keys, bindings=bindings,
                                   n=8, hoist=False)
        assert hoisted == flat
        for binding, outputs in zip(bindings, hoisted):
            batch = {**context, probe: [binding[probe]] * 8}
            assert outputs == simulator.run_batch(batch,
                                                  key=locked.correct_key,
                                                  n=8)

    def test_binding_sweep_on_unlocked_design(self):
        design = plus_network(24, n_inputs=4, name="plus_vn")
        simulator = BatchSimulator(design)
        base = simulator.random_batch(random.Random(8), 6)
        shared = {name: values for name, values in base.items()
                  if name != "in2"}
        bindings = [{"in2": 0}, {"in2": 9}, {}]
        hoisted = simulator.run_sweep(shared, bindings=bindings, n=6,
                                      hoist=True)
        flat = simulator.run_sweep(shared, bindings=bindings, n=6,
                                   hoist=False)
        assert hoisted == flat
        for binding, outputs in zip(bindings, hoisted):
            value = binding.get("in2", 0)
            batch = {**shared, "in2": [value] * 6}
            assert outputs == simulator.run_batch(batch, n=6)

    def test_keys_and_bindings_combine_under_hoisting(self):
        locked = _locked("SASC")
        simulator = BatchSimulator(locked)
        data = [name for name in simulator.input_names
                if name != locked.key_port]
        swept = data[-1]
        base = simulator.random_batch(random.Random(9), 4)
        shared = {name: values for name, values in base.items()
                  if name != swept}
        keys = [random_key(locked.key_width, random.Random(10))
                for _ in range(3)]
        bindings = [{swept: 1}, {swept: 2}, {swept: 3}]
        swept_runs = simulator.run_sweep(shared, keys=keys,
                                         bindings=bindings, n=4)
        for key, binding, outputs in zip(keys, bindings, swept_runs):
            batch = {**shared, swept: [binding[swept]] * 4}
            assert outputs == simulator.run_batch(batch, key=key, n=4)


class TestScheduleAndClassifier:
    def test_classifier_respects_transitive_reads(self):
        locked = _locked()
        plan = compile_plan(locked)
        invariant, varying = classify_steps(plan.steps, plan.inputs,
                                            {locked.key_port})
        assert len(invariant) + len(varying) == len(plan.steps)
        names = {name for name in plan.inputs if name != locked.key_port}
        for step in invariant:
            assert set(step.reads) <= names
            names.add(step.target)
        # every varying step reads at least one point-varying name
        varying_names = {locked.key_port}
        for step in varying:
            assert set(step.reads) & varying_names
            varying_names.add(step.target)

    def test_schedules_are_cached_on_the_plan(self):
        locked = _locked()
        plan = compile_plan(locked)
        first = sweep_schedule(plan, frozenset({locked.key_port}))
        second = sweep_schedule(plan, frozenset({locked.key_port}))
        assert first is second
        flat = sweep_schedule(plan, frozenset({locked.key_port}), flat=True)
        assert flat is not first and not flat.invariant_steps

    def test_key_cone_dominated_plan_falls_back_to_flat(self):
        """MD5's key cone covers nearly the whole plan: hoisting would only
        add bookkeeping, so the schedule degrades to the flat split."""
        locked = _locked("MD5")
        plan = compile_plan(locked)
        schedule = sweep_schedule(plan, frozenset({locked.key_port}))
        assert not schedule.invariant_steps

    def test_validation_errors_survive_hoisting(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(11), 4)
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, keys=[[2] * locked.key_width], n=4)
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, keys=[], n=4)
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch,
                                bindings=[{locked.key_port: 1}], n=4)


class TestVectorisedPackers:
    @pytest.mark.parametrize("width", [1, 7, 8, 32, 63, 64])
    @pytest.mark.parametrize("lanes", [_FAST_PACK_LANES, 130, 513])
    def test_pack_unpack_roundtrip_fast_paths(self, width, lanes):
        rng = random.Random(width * lanes)
        values = [rng.getrandbits(width) for _ in range(lanes)]
        slices = pack_values(values, width)
        # fast path agrees with the set-bit loop on a sub-threshold chunk
        head = pack_values(values[:16], width)
        assert [word & 0xFFFF for word in slices] == head
        assert unpack_values(slices, lanes) == values

    def test_wide_values_use_the_loop_but_unpack_fast(self):
        rng = random.Random(0)
        values = [rng.getrandbits(70) for _ in range(200)]
        slices = pack_values(values, 70)  # width > 64: set-bit loop
        assert unpack_values(slices, 200) == values  # fast path, 2 words

    def test_negative_and_overwide_values_are_masked(self):
        values = [-1, 1 << 70] + [5] * (_FAST_PACK_LANES - 2)
        slices = pack_values(values, 8)
        assert unpack_values(slices, len(values))[:2] \
            == [mask(-1, 8), mask(1 << 70, 8)]

    def test_swept_key_packer_fast_equals_loop(self):
        rng = random.Random(1)
        keys = [[rng.randint(0, 1) for _ in range(10)] for _ in range(16)]
        fast = _pack_swept_keys(keys, 10, 32)   # 512 lanes: vectorised
        slow = _pack_swept_keys(keys, 10, 2)    # 32 lanes: loop
        for position in range(10):
            for point in range(16):
                fast_block = (fast[position] >> (point * 32)) & 0xFFFFFFFF
                slow_block = (slow[position] >> (point * 2)) & 0b11
                assert (fast_block != 0) == (slow_block != 0) \
                    == bool(keys[point][position])

    def test_swept_key_packer_validates_bits(self):
        keys = [[0, 1]] * 15 + [[0, 2]]
        with pytest.raises(SimulationError, match="sweep point 15"):
            _pack_swept_keys(keys, 2, 32)
        with pytest.raises(SimulationError):
            _pack_swept_keys(keys, 2, 2)  # loop path: same rejection

    def test_point_value_packer_fast_equals_loop(self):
        rng = random.Random(2)
        values = [rng.getrandbits(8) for _ in range(16)]
        fast = _pack_point_values(values, 8, 32)
        slow = _pack_point_values(values, 8, 2)
        for position in range(8):
            for point in range(16):
                bit = (values[point] >> position) & 1
                fast_block = (fast[position] >> (point * 32)) & 0xFFFFFFFF
                slow_block = (slow[position] >> (point * 2)) & 0b11
                assert (fast_block == (0xFFFFFFFF if bit else 0))
                assert (slow_block == (0b11 if bit else 0))
