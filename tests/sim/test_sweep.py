"""Per-lane sweep API: one pass over N (key, input) points, loop semantics.

``run_sweep`` must be indistinguishable from the per-key ``run_batch`` loop
it replaces, point for point and bit for bit; ``key_sweep`` must additionally
hide the engine entirely — scalar fallback and batch sweep return the same
structures with the same numbers.
"""

import random

import pytest

from repro.bench import load_benchmark, plus_network
from repro.locking import AssureLocker, ERALocker
from repro.rtlir import Design, KeyBit
from repro.sim import (
    BatchSimulator,
    CombinationalSimulator,
    SimulationError,
    batch_to_vectors,
    key_sweep,
    random_input_batch,
    random_key,
)


def _locked(name="MD5", algorithm="assure", seed=0, scale=0.15):
    design = load_benchmark(name, scale=scale, seed=seed)
    budget = max(1, int(0.75 * design.num_operations()))
    locker = AssureLocker("serial", rng=random.Random(seed),
                          track_metrics=False) if algorithm == "assure" \
        else ERALocker(rng=random.Random(seed), track_metrics=False)
    return locker.lock(design, budget).design


def _random_keys(width, count, seed):
    rng = random.Random(seed)
    return [random_key(width, rng) for _ in range(count)]


class TestRunSweep:
    @pytest.mark.parametrize("algorithm", ["assure", "era"])
    def test_equals_per_key_batch_loop(self, algorithm):
        locked = _locked(algorithm=algorithm)
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(1), 16)
        keys = _random_keys(locked.key_width, 12, seed=2)
        swept = simulator.run_sweep(batch, keys=keys, n=16)
        loop = [simulator.run_batch(batch, key=key, n=16) for key in keys]
        assert swept == loop

    def test_equals_scalar_oracle(self):
        locked = _locked(algorithm="era")
        simulator = BatchSimulator(locked)
        scalar = CombinationalSimulator(locked, engine="ast")
        batch = simulator.random_batch(random.Random(3), 8)
        keys = [locked.correct_key] + _random_keys(locked.key_width, 5, 4)
        swept = simulator.run_sweep(batch, keys=keys, n=8)
        for key, outputs in zip(keys, swept):
            for lane, vector in enumerate(batch_to_vectors(batch, 8)):
                expected = scalar.run(vector, key=key)
                for name, value in expected.items():
                    assert outputs[name][lane] == value

    def test_single_point_equals_run_batch(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(5), 4)
        key = locked.correct_key
        (point,) = simulator.run_sweep(batch, keys=[key], n=4)
        assert point == simulator.run_batch(batch, key=key, n=4)

    def test_input_bindings_broadcast_per_point(self):
        design = plus_network(16, n_inputs=4, name="plus16")
        simulator = BatchSimulator(design)
        base = simulator.random_batch(random.Random(6), 6)
        shared = {name: values for name, values in base.items()
                  if name != "in0"}
        bindings = [{"in0": 0}, {"in0": 7}, {}]
        swept = simulator.run_sweep(shared, bindings=bindings, n=6)
        for binding, outputs in zip(bindings, swept):
            value = binding.get("in0", 0)
            expected = simulator.run_batch({**shared, "in0": [value] * 6}, n=6)
            assert outputs == expected

    def test_keys_and_bindings_combine(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        data = [name for name in simulator.input_names
                if name != locked.key_port]
        swept_name = data[0]
        base = simulator.random_batch(random.Random(7), 4)
        shared = {name: values for name, values in base.items()
                  if name != swept_name}
        keys = _random_keys(locked.key_width, 3, 8)
        bindings = [{swept_name: 1}, {swept_name: 2}, {swept_name: 3}]
        swept = simulator.run_sweep(shared, keys=keys, bindings=bindings, n=4)
        for key, binding, outputs in zip(keys, bindings, swept):
            batch = {**shared, swept_name: [binding[swept_name]] * 4}
            assert outputs == simulator.run_batch(batch, key=key, n=4)

    def test_rejects_inconsistent_shapes(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(9), 4)
        keys = _random_keys(locked.key_width, 2, 10)
        short = dict(batch)
        short[next(iter(short))] = [0, 1]
        with pytest.raises(SimulationError):
            simulator.run_sweep(short, keys=keys, n=4)
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, keys=keys, bindings=[{}], n=4)
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, keys=[], n=4)
        with pytest.raises(SimulationError):
            simulator.run_sweep({}, keys=keys)

    def test_rejects_key_sweep_of_unlocked_design(self):
        design = plus_network(8, n_inputs=4, name="plus8")
        simulator = BatchSimulator(design)
        batch = simulator.random_batch(random.Random(11), 2)
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, keys=[[0], [1]], n=2)

    def test_rejects_key_port_binding_and_shared_swept_overlap(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(12), 2)
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, bindings=[{locked.key_port: 1}], n=2)
        name = next(iter(batch))
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, bindings=[{name: 1}], n=2)

    def test_rejects_invalid_key_bits(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(13), 2)
        bad = [[2] * locked.key_width]
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, keys=bad, n=2)


# ---------------------------------------------------------------------------
# The engine-hiding key_sweep helper (batch fast path + scalar fallback)
# ---------------------------------------------------------------------------


def _uncompilable_locked_design():
    """A locked design the plan compiler rejects (dynamic replication)."""
    design = Design.from_verilog("""
    module oddball (input [3:0] a, input [1:0] n, input [1:0] lock_key,
                    output [7:0] y, output [3:0] z);
      wire [3:0] t = lock_key[0] ? (a + 1) : (a - 1);
      assign y = {n{a}};
      assign z = lock_key[1] ? t : (t ^ 4'b0101);
    endmodule
    """)
    design.key_port = "lock_key"
    design.key_bits = [
        KeyBit(index=0, kind="operation", correct_value=1),
        KeyBit(index=1, kind="operation", correct_value=0),
    ]
    return design


class TestKeySweepHelper:
    def test_batch_and_scalar_engines_agree(self):
        locked = _locked(algorithm="era")
        batch = random_input_batch(locked, random.Random(20), 10)
        keys = [locked.correct_key] + _random_keys(locked.key_width, 4, 21)
        fast = key_sweep(locked, batch, keys, n=10, engine="batch")
        slow = key_sweep(locked, batch, keys, n=10, engine="scalar")
        assert fast == slow

    def test_scalar_fallback_on_uncompilable_design(self):
        locked = _uncompilable_locked_design()
        batch = random_input_batch(locked, random.Random(22), 6)
        keys = [[1, 0], [0, 1], [1, 1]]
        results = key_sweep(locked, batch, keys, n=6)  # engine="batch"
        scalar = CombinationalSimulator(locked, engine="ast")
        for key, outputs in zip(keys, results):
            for lane, vector in enumerate(batch_to_vectors(batch, 6)):
                expected = scalar.run(vector, key=key)
                for name, value in expected.items():
                    assert outputs[name][lane] == value

    def test_rejects_unlocked_and_empty(self):
        design = plus_network(8, n_inputs=4, name="plus8u")
        batch = random_input_batch(design, random.Random(23), 2)
        with pytest.raises(SimulationError):
            key_sweep(design, batch, [[0]], n=2)
        locked = _locked()
        locked_batch = random_input_batch(locked, random.Random(24), 2)
        with pytest.raises(SimulationError):
            key_sweep(locked, locked_batch, [], n=2)
        with pytest.raises(ValueError):
            key_sweep(locked, locked_batch, [locked.correct_key],
                      engine="turbo")
