"""Unit tests for the expression evaluator."""

import pytest

from repro.sim import ExpressionEvaluator, SimulationError, mask
from repro.verilog.parser import parse_expression


@pytest.fixture
def evaluator():
    return ExpressionEvaluator(widths={"a": 8, "b": 8, "c": 4, "flag": 1},
                               default_width=16)


def ev(evaluator, text, **env):
    return evaluator.evaluate(parse_expression(text), env)


class TestMask:
    def test_mask_truncates(self):
        assert mask(0x1FF, 8) == 0xFF
        assert mask(-1, 4) == 0xF
        assert mask(5, 8) == 5

    def test_invalid_width(self):
        with pytest.raises(SimulationError):
            mask(1, 0)


class TestArithmetic:
    def test_basic_arithmetic(self, evaluator):
        assert ev(evaluator, "a + b", a=10, b=20) == 30
        assert ev(evaluator, "a - b", a=10, b=3) == 7
        assert ev(evaluator, "a * b", a=6, b=7) == 42
        assert ev(evaluator, "a / b", a=42, b=5) == 8
        assert ev(evaluator, "a % b", a=42, b=5) == 2

    def test_subtraction_wraps_unsigned(self, evaluator):
        assert ev(evaluator, "a - b", a=1, b=2) == mask(-1, 16)

    def test_division_by_zero_is_zero(self, evaluator):
        assert ev(evaluator, "a / b", a=9, b=0) == 0
        assert ev(evaluator, "a % b", a=9, b=0) == 0

    def test_power(self, evaluator):
        assert ev(evaluator, "a ** c", a=2, c=5) == 32

    def test_shifts(self, evaluator):
        assert ev(evaluator, "a << c", a=3, c=2) == 12
        assert ev(evaluator, "a >> c", a=12, c=2) == 3


class TestBitwiseAndRelational:
    def test_bitwise(self, evaluator):
        assert ev(evaluator, "a & b", a=0b1100, b=0b1010) == 0b1000
        assert ev(evaluator, "a | b", a=0b1100, b=0b1010) == 0b1110
        assert ev(evaluator, "a ^ b", a=0b1100, b=0b1010) == 0b0110

    def test_relational(self, evaluator):
        assert ev(evaluator, "a < b", a=1, b=2) == 1
        assert ev(evaluator, "a >= b", a=2, b=2) == 1
        assert ev(evaluator, "a == b", a=5, b=5) == 1
        assert ev(evaluator, "a != b", a=5, b=5) == 0

    def test_logical(self, evaluator):
        assert ev(evaluator, "a && b", a=3, b=0) == 0
        assert ev(evaluator, "a || b", a=0, b=7) == 1

    def test_unary(self, evaluator):
        assert ev(evaluator, "!a", a=0) == 1
        assert ev(evaluator, "~a", a=0) == mask(-1, 16)
        assert ev(evaluator, "-a", a=1) == mask(-1, 16)

    def test_reductions(self, evaluator):
        assert ev(evaluator, "&a", a=0xFF) == 1
        assert ev(evaluator, "&a", a=0xFE) == 0
        assert ev(evaluator, "|a", a=0) == 0
        assert ev(evaluator, "^a", a=0b0111) == 1


class TestStructural:
    def test_ternary(self, evaluator):
        assert ev(evaluator, "flag ? a : b", flag=1, a=10, b=20) == 10
        assert ev(evaluator, "flag ? a : b", flag=0, a=10, b=20) == 20

    def test_sized_literals(self, evaluator):
        assert ev(evaluator, "8'hFF + 1") == 256
        assert ev(evaluator, "4'b1010") == 10

    def test_concat_and_replication(self, evaluator):
        assert ev(evaluator, "{c, c}", c=0xA) == 0xAA
        assert ev(evaluator, "{2{c}}", c=0x3) == 0x33

    def test_selects(self, evaluator):
        assert ev(evaluator, "a[0]", a=0b1011) == 1
        assert ev(evaluator, "a[2]", a=0b1011) == 0
        assert ev(evaluator, "a[3:1]", a=0b1011) == 0b101
        assert ev(evaluator, "a[0 +: 4]", a=0xAB) == 0xB

    def test_identifier_masked_to_width(self, evaluator):
        # 'c' is 4 bits wide; larger environment values are truncated.
        assert ev(evaluator, "c", c=0x1F) == 0xF

    def test_missing_signal_raises(self, evaluator):
        with pytest.raises(SimulationError):
            ev(evaluator, "zz + 1")

    def test_x_literal_raises(self, evaluator):
        with pytest.raises(SimulationError):
            ev(evaluator, "4'b10xx + 1")
