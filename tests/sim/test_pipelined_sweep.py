"""Memory-bounded (chunked) sweeps: tiling must be invisible in results.

``max_lanes`` caps the packed lane width of ``run_sweep``/``run_batch``; the
executor splits the S sweep points into point tiles and streams each tile
through the varying steps.  Because the bit-slice kernels never mix bits
across lanes, every tiling — single-point tiles, ragged last tiles, no
chunking at all — must be *bit-identical* to the unchunked evaluation, for
every pass subset and both hoisted and flat schedules.
"""

import random

import pytest

from repro.bench import load_benchmark, plus_network
from repro.locking import AssureLocker, ERALocker
from repro.sim import (
    BatchSimulator,
    DEFAULT_LANE_BITS_BUDGET,
    SimulationError,
    auto_max_lanes,
    compile_plan,
    default_max_lanes,
    key_sweep,
    lane_limit,
    plan_lane_bits,
    random_input_batch,
    random_key,
    set_default_max_lanes,
)
from repro.sim.plan import PASS_ORDER

#: Same golden matrix as the pass tests: each optimisation alone, nothing,
#: everything — chunking must compose with every schedule shape.
PASS_SUBSETS = [
    ("lower",),
    ("fold", "lower"),
    ("cse", "lower"),
    ("sweep-vn", "lower"),
    ("lower", "prune"),
    PASS_ORDER,
]

#: Lane caps exercised against 12 points x 8 base lanes (96 lanes total):
#: single-point tiles, a ragged last tile (5+5+2 points), and a cap far above
#: the sweep (no chunking; the tiled path must still not engage).
BASE = 8
POINTS = 12
LANE_CAPS = [BASE, 5 * BASE, 1 << 30]


def _locked(algorithm="era", name="MD5", seed=0, scale=0.15):
    design = load_benchmark(name, scale=scale, seed=seed)
    budget = max(1, int(0.75 * design.num_operations()))
    locker = AssureLocker("serial", rng=random.Random(seed),
                          track_metrics=False) if algorithm == "assure" \
        else ERALocker(rng=random.Random(seed), track_metrics=False)
    return locker.lock(design, budget).design


def _random_keys(width, count, seed):
    rng = random.Random(seed)
    return [random_key(width, rng) for _ in range(count)]


class TestChunkedBitIdentity:
    """Chunked == unchunked, across pass subsets, hoisting, and tilings."""

    @pytest.mark.parametrize("passes", PASS_SUBSETS,
                             ids=["+".join(p) for p in PASS_SUBSETS])
    @pytest.mark.parametrize("max_lanes", LANE_CAPS)
    def test_key_sweep_matrix(self, passes, max_lanes):
        locked = _locked(algorithm="era")
        simulator = BatchSimulator(locked,
                                   plan=compile_plan(locked, passes=passes))
        batch = simulator.random_batch(random.Random(1), BASE)
        keys = _random_keys(locked.key_width, POINTS, seed=2)
        reference = simulator.run_sweep(batch, keys=keys, n=BASE)
        chunked = simulator.run_sweep(batch, keys=keys, n=BASE,
                                      max_lanes=max_lanes)
        assert chunked == reference

    @pytest.mark.parametrize("hoist", [None, False])
    @pytest.mark.parametrize("max_lanes", LANE_CAPS)
    def test_hoisted_and_flat_schedules(self, hoist, max_lanes):
        locked = _locked(algorithm="assure")
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(3), BASE)
        keys = _random_keys(locked.key_width, POINTS, seed=4)
        reference = simulator.run_sweep(batch, keys=keys, n=BASE, hoist=hoist)
        chunked = simulator.run_sweep(batch, keys=keys, n=BASE, hoist=hoist,
                                      max_lanes=max_lanes)
        assert chunked == reference

    @pytest.mark.parametrize("max_lanes", LANE_CAPS)
    def test_bindings_and_shared_key(self, max_lanes):
        locked = _locked()
        simulator = BatchSimulator(locked)
        data = [name for name in simulator.input_names
                if name != locked.key_port]
        swept_name = data[0]
        base = simulator.random_batch(random.Random(5), BASE)
        shared = {name: values for name, values in base.items()
                  if name != swept_name}
        bindings = [{swept_name: point % 4} for point in range(POINTS)]
        # Shared key (every point uses the same key -> block-width broadcast)
        shared_key = [locked.correct_key] * POINTS
        reference = simulator.run_sweep(shared, keys=shared_key,
                                        bindings=bindings, n=BASE)
        chunked = simulator.run_sweep(shared, keys=shared_key,
                                      bindings=bindings, n=BASE,
                                      max_lanes=max_lanes)
        assert chunked == reference
        # Per-point keys combined with bindings
        keys = _random_keys(locked.key_width, POINTS, seed=6)
        reference = simulator.run_sweep(shared, keys=keys,
                                        bindings=bindings, n=BASE)
        chunked = simulator.run_sweep(shared, keys=keys, bindings=bindings,
                                      n=BASE, max_lanes=max_lanes)
        assert chunked == reference

    def test_ragged_last_tile_against_per_key_loop(self):
        locked = _locked(algorithm="era")
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(7), BASE)
        keys = _random_keys(locked.key_width, 7, seed=8)
        # 3-point tiles over 7 points: tiles of 3, 3, and 1.
        swept = simulator.run_sweep(batch, keys=keys, n=BASE,
                                    max_lanes=3 * BASE)
        loop = [simulator.run_batch(batch, key=key, n=BASE) for key in keys]
        assert swept == loop

    def test_run_batch_chunking(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(9), 10)
        keys = _random_keys(locked.key_width, 10, seed=10)
        reference = simulator.run_batch(batch, keys=keys, n=10)
        for cap in (1, 3, 10, 1 << 30):
            assert simulator.run_batch(batch, keys=keys, n=10,
                                       max_lanes=cap) == reference
        # Broadcast key path
        shared = simulator.run_batch(batch, key=locked.correct_key, n=10)
        assert simulator.run_batch(batch, key=locked.correct_key, n=10,
                                   max_lanes=4) == shared


class TestOutputKeyOrder:
    """Regression: result dicts follow ``plan.outputs`` order on every path.

    Before the fix, only sweeps with hoisted invariant outputs normalised
    their key order; flat schedules returned varying-first dicts.
    """

    @pytest.mark.parametrize("hoist", [None, False])
    def test_result_keys_match_plan_outputs(self, hoist):
        locked = _locked(algorithm="era")
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(11), 4)
        keys = _random_keys(locked.key_width, 3, seed=12)
        for point in simulator.run_sweep(batch, keys=keys, n=4, hoist=hoist):
            assert list(point) == list(simulator.plan.outputs)

    def test_key_order_identical_across_paths(self):
        locked = _locked(algorithm="era")
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(13), 4)
        keys = _random_keys(locked.key_width, 3, seed=14)
        orders = set()
        for hoist in (None, False):
            for max_lanes in (None, BASE):
                for point in simulator.run_sweep(batch, keys=keys, n=4,
                                                 hoist=hoist,
                                                 max_lanes=max_lanes):
                    orders.add(tuple(point))
        assert len(orders) == 1


class TestLaneLimitResolution:
    """Explicit arg > process default > unbounded; "auto" sizes from plan."""

    def test_rejects_nonpositive_cap(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(15), 4)
        keys = _random_keys(locked.key_width, 2, seed=16)
        with pytest.raises(SimulationError):
            simulator.run_sweep(batch, keys=keys, n=4, max_lanes=0)
        with pytest.raises(SimulationError):
            simulator.run_batch(batch, key=locked.correct_key, n=4,
                                max_lanes=-1)
        with pytest.raises(ValueError):
            set_default_max_lanes(0)

    def test_auto_cap_scales_with_plan_width(self):
        locked = _locked()
        plan = compile_plan(locked)
        bits = plan_lane_bits(plan)
        assert bits >= 1
        assert auto_max_lanes(plan) == max(1, DEFAULT_LANE_BITS_BUDGET // bits)
        # The cap never tiles below one point: base is the floor.
        assert auto_max_lanes(plan, base=1 << 40) == 1 << 40

    def test_lane_limit_context_sets_and_restores_default(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(17), BASE)
        keys = _random_keys(locked.key_width, POINTS, seed=18)
        reference = simulator.run_sweep(batch, keys=keys, n=BASE)
        before = default_max_lanes()
        with lane_limit(3 * BASE):
            assert default_max_lanes() == 3 * BASE
            assert simulator.run_sweep(batch, keys=keys, n=BASE) == reference
            with lane_limit("auto"):
                assert default_max_lanes() == "auto"
                assert simulator.run_sweep(batch, keys=keys,
                                           n=BASE) == reference
        assert default_max_lanes() == before

    def test_explicit_arg_overrides_process_default(self):
        locked = _locked()
        simulator = BatchSimulator(locked)
        batch = simulator.random_batch(random.Random(19), BASE)
        keys = _random_keys(locked.key_width, POINTS, seed=20)
        reference = simulator.run_sweep(batch, keys=keys, n=BASE)
        with lane_limit(BASE):
            assert simulator.run_sweep(batch, keys=keys, n=BASE,
                                       max_lanes=1 << 30) == reference


class TestConsumerThreading:
    """The cap reaches sweeps made through the high-level helpers."""

    def test_key_sweep_helper(self):
        locked = _locked(algorithm="era")
        batch = random_input_batch(locked, random.Random(21), BASE)
        keys = [locked.correct_key] + _random_keys(locked.key_width,
                                                   POINTS - 1, 22)
        reference = key_sweep(locked, batch, keys, n=BASE)
        assert key_sweep(locked, batch, keys, n=BASE,
                         max_lanes=3 * BASE) == reference

    def test_functional_kpa_many(self):
        from repro.attacks.kpa import functional_kpa_many

        locked = _locked(algorithm="era")
        keys = _random_keys(locked.key_width, 4, seed=23)
        reference = functional_kpa_many(locked, keys, vectors=16,
                                        rng=random.Random(24))
        chunked = functional_kpa_many(locked, keys, vectors=16,
                                      rng=random.Random(24), max_lanes=32)
        assert chunked == reference

    def test_metrics_accept_max_lanes(self):
        from repro.locking.metrics import (functional_corruption,
                                           key_bit_sensitivity)

        locked = _locked(algorithm="era")
        reference = functional_corruption(locked, vectors=16, wrong_keys=6,
                                          rng=random.Random(25))
        chunked = functional_corruption(locked, vectors=16, wrong_keys=6,
                                        rng=random.Random(25), max_lanes=32)
        assert chunked == reference
        reference = key_bit_sensitivity(locked, vectors=16,
                                        rng=random.Random(26))
        chunked = key_bit_sensitivity(locked, vectors=16,
                                      rng=random.Random(26), max_lanes=32)
        assert chunked == reference

    def test_unlocked_sweep_with_bindings_chunks(self):
        design = plus_network(16, n_inputs=4, name="plus16c")
        simulator = BatchSimulator(design)
        base = simulator.random_batch(random.Random(27), 6)
        shared = {name: values for name, values in base.items()
                  if name != "in0"}
        bindings = [{"in0": value} for value in range(5)]
        reference = simulator.run_sweep(shared, bindings=bindings, n=6)
        assert simulator.run_sweep(shared, bindings=bindings, n=6,
                                   max_lanes=12) == reference
