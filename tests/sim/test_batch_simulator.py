"""Cross-check suite: the batch engine against the scalar reference oracle.

The scalar :class:`CombinationalSimulator` is the semantic ground truth; the
bit-parallel :class:`BatchSimulator` must match it *output-for-output* on
every lane — for random generated designs, random keys (correct and wrong),
1-bit and 64-bit signals, and batches wider than a machine word.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import plus_network, profile_design
from repro.bench.profiles import BenchmarkProfile
from repro.locking import AssureLocker, ERALocker, HRALocker
from repro.rtlir import Design
from repro.sim import (
    BatchCompileError,
    BatchSimulator,
    CombinationalSimulator,
    SimulationError,
    compile_plan,
    pack_values,
    unpack_values,
)

#: Operators drawn by the random cross-check profiles; division/modulo and
#: shifts are included to exercise the bit-slice divider and barrel shifter.
_OPERATORS = ["+", "-", "*", "/", "%", "^", "&", "|", "<<", ">>",
              "<", ">", "<=", ">=", "==", "!="]


def _cross_check(design, vectors, seed, key=None):
    """Assert batch == scalar on every lane and every output."""
    scalar = CombinationalSimulator(design, engine="ast")
    batch = BatchSimulator(design)
    assert batch.input_names == scalar.input_names
    assert batch.output_names == scalar.output_names

    rng = random.Random(seed)
    vector_list = [scalar.random_vector(rng) for _ in range(vectors)]
    packed = {name: [v[name] for v in vector_list] for name in vector_list[0]}
    got = batch.run_batch(packed, key=key, n=vectors)
    for lane, vector in enumerate(vector_list):
        expected = scalar.run(vector, key=key)
        for name, value in expected.items():
            assert got[name][lane] == value, (
                f"lane {lane} output {name}: scalar={value} "
                f"batch={got[name][lane]} inputs={vector}")


@st.composite
def cross_check_profiles(draw):
    n_types = draw(st.integers(min_value=2, max_value=6))
    operators = draw(st.permutations(_OPERATORS))[:n_types]
    operations = {op: draw(st.integers(min_value=1, max_value=6))
                  for op in operators}
    width = draw(st.sampled_from([1, 4, 8, 16, 64]))
    return BenchmarkProfile(name="hyp_batch_profile",
                            description="hypothesis batch cross-check",
                            operations=operations, sequential=False,
                            n_inputs=4, width=width)


class TestBatchMatchesScalar:
    @given(profile=cross_check_profiles(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_random_designs(self, profile, seed):
        design = profile_design(profile, seed=seed)
        _cross_check(design, vectors=17, seed=seed + 1)

    @given(profile=cross_check_profiles(), seed=st.integers(0, 2 ** 16),
           algorithm=st.sampled_from(["assure", "hra", "era"]))
    @settings(max_examples=20, deadline=None)
    def test_locked_designs_random_keys(self, profile, seed, algorithm):
        lockers = {
            "assure": lambda r: AssureLocker("random", rng=r,
                                             track_metrics=False),
            "hra": lambda r: HRALocker(rng=r, track_metrics=False),
            "era": lambda r: ERALocker(rng=r, track_metrics=False),
        }
        design = profile_design(profile, seed=seed)
        budget = max(1, design.num_operations() // 2)
        locked = lockers[algorithm](random.Random(seed)).lock(design, budget)
        correct = locked.design.correct_key
        key_rng = random.Random(seed + 2)
        wrong = [key_rng.randint(0, 1) for _ in correct]
        for key in (correct, wrong):
            _cross_check(locked.design, vectors=9, seed=seed + 3, key=key)

    def test_one_bit_signals(self):
        design = Design.from_verilog("""
        module onebit (input a, input b, input c, output x, output y, output z);
          wire t = a & b;
          assign x = t | c;
          assign y = a ^ b ^ c;
          assign z = !(a < b);
        endmodule
        """, name="onebit")
        _cross_check(design, vectors=64, seed=0)

    def test_sixty_four_bit_signals(self):
        design = Design.from_verilog("""
        module wide (
          input [63:0] a,
          input [63:0] b,
          output [63:0] s,
          output [63:0] x,
          output cmp
        );
          wire [63:0] t = a + b;
          assign s = t;
          assign x = (a ^ b) & t;
          assign cmp = a > b;
        endmodule
        """, name="wide")
        _cross_check(design, vectors=32, seed=1)

    def test_more_than_64_lanes(self):
        design = plus_network(20, n_inputs=4, name="plus20")
        _cross_check(design, vectors=300, seed=2)

    def test_single_lane(self):
        design = plus_network(8, n_inputs=4, name="plus8")
        _cross_check(design, vectors=1, seed=3)

    def test_mixed_width_expressions(self):
        design = Design.from_verilog("""
        module mixed (
          input [7:0] a,
          input [3:0] b,
          input c,
          output [7:0] y,
          output [7:0] w,
          output r
        );
          wire [7:0] t0 = a - b;
          wire [7:0] t1 = c ? (a * b) : (a / (b + 1));
          wire [7:0] t2 = {b, a[7:4]};
          wire [7:0] t3 = ~t0;
          assign y = t1 ^ t2;
          assign w = (t3 >> b[1:0]) + {2{b}};
          assign r = &a | ^b;
        endmodule
        """, name="mixed")
        _cross_check(design, vectors=128, seed=4)

    def test_reductions_and_unary(self):
        design = Design.from_verilog("""
        module redux (input [7:0] a, input [7:0] b,
                      output [7:0] n, output o0, output o1, output o2,
                      output o3, output o4);
          assign n = -a;
          assign o0 = &a;
          assign o1 = ~&a;
          assign o2 = |b;
          assign o3 = ~|b;
          assign o4 = ^a ^ ~^b;
        endmodule
        """, name="redux")
        _cross_check(design, vectors=256, seed=5)

    def test_division_by_zero_convention(self):
        design = Design.from_verilog("""
        module divz (input [7:0] a, input [7:0] b,
                     output [7:0] q, output [7:0] r);
          assign q = a / b;
          assign r = a % b;
        endmodule
        """, name="divz")
        scalar = CombinationalSimulator(design, engine="ast")
        batch = BatchSimulator(design)
        outputs = batch.run_batch({"a": [17, 200, 0], "b": [0, 3, 0]})
        assert outputs["q"] == [0, 66, 0]
        assert outputs["r"] == [0, 2, 0]
        assert scalar.run({"a": 17, "b": 0}) == {"q": 0, "r": 0}
        _cross_check(design, vectors=200, seed=6)


class TestBatchApi:
    def test_missing_inputs_default_to_zero(self):
        design = plus_network(4, n_inputs=4, name="plus4")
        batch = BatchSimulator(design)
        scalar = CombinationalSimulator(design, engine="ast")
        got = batch.run_batch({"in0": [7, 9]})
        assert got["out"][0] == scalar.run({"in0": 7})["out"]
        assert got["out"][1] == scalar.run({"in0": 9})["out"]

    def test_unknown_input_rejected(self):
        design = plus_network(4, n_inputs=4, name="plus4")
        with pytest.raises(SimulationError):
            BatchSimulator(design).run_batch({"zz": [1]})

    def test_inconsistent_lane_counts_rejected(self):
        design = plus_network(4, n_inputs=4, name="plus4")
        with pytest.raises(SimulationError):
            BatchSimulator(design).run_batch({"in0": [1, 2], "in1": [3]})

    def test_empty_batch_rejected(self):
        design = plus_network(4, n_inputs=4, name="plus4")
        with pytest.raises(SimulationError):
            BatchSimulator(design).run_batch({})

    def test_invalid_key_bit_rejected(self):
        design = profile_design(BenchmarkProfile(
            "kb", "key batch", {"+": 3}, sequential=False, n_inputs=3), seed=0)
        locked = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False).lock(design, 2).design
        batch = BatchSimulator(locked)
        with pytest.raises(SimulationError):
            batch.run_batch({"d0": [1]}, key=[2] * locked.key_width)

    def test_per_lane_keys_match_broadcast(self):
        design = profile_design(BenchmarkProfile(
            "pl", "per lane", {"+": 4, "^": 3}, sequential=False, n_inputs=3),
            seed=1)
        locked = AssureLocker("serial", rng=random.Random(1),
                              track_metrics=False).lock(design, 4).design
        batch = BatchSimulator(locked)
        rng = random.Random(2)
        inputs = batch.random_batch(rng, 1)
        lanes = 10
        wide = {name: values * lanes for name, values in inputs.items()}
        keys = [[random.Random(100 + i).randint(0, 1)
                 for _ in range(locked.key_width)] for i in range(lanes)]
        per_lane = batch.run_batch(wide, keys=keys)
        for lane, key in enumerate(keys):
            broadcast = batch.run_batch(inputs, key=key)
            for name in batch.output_names:
                assert per_lane[name][lane] == broadcast[name][0]

    def test_key_and_keys_mutually_exclusive(self):
        design = profile_design(BenchmarkProfile(
            "kx", "key exclusive", {"+": 3}, sequential=False, n_inputs=3),
            seed=0)
        locked = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False).lock(design, 2).design
        batch = BatchSimulator(locked)
        with pytest.raises(SimulationError):
            batch.run_batch({"d0": [1]}, key=[0] * locked.key_width,
                            keys=[[0] * locked.key_width])

    def test_run_single_vector_matches_scalar(self):
        design = plus_network(10, n_inputs=4, name="plus10")
        batch = BatchSimulator(design)
        scalar = CombinationalSimulator(design, engine="ast")
        vector = {"in0": 11, "in1": 22, "in2": 33, "in3": 44}
        assert batch.run(vector) == scalar.run(vector)

    def test_random_batch_matches_scalar_stream(self):
        design = plus_network(6, n_inputs=4, name="plus6")
        batch = BatchSimulator(design)
        scalar = CombinationalSimulator(design, engine="ast")
        drawn = batch.random_batch(random.Random(42), 5)
        rng = random.Random(42)
        for lane in range(5):
            vector = scalar.random_vector(rng)
            for name, value in vector.items():
                assert drawn[name][lane] == value

    def test_plan_is_shareable(self):
        design = plus_network(6, n_inputs=4, name="plus6")
        plan = compile_plan(design)
        a = BatchSimulator(design, plan=plan)
        b = BatchSimulator(design, plan=plan)
        assert a.plan is b.plan
        inputs = {"in0": [1], "in1": [2], "in2": [3], "in3": [4]}
        assert a.run_batch(inputs) == b.run_batch(inputs)

    def test_dependency_cycle_detected(self):
        design = Design.from_verilog("""
        module loop (input [3:0] a, output [3:0] y);
          wire [3:0] u;
          wire [3:0] v = u + a;
          assign u = v + 1;
          assign y = v;
        endmodule
        """)
        with pytest.raises(SimulationError):
            BatchSimulator(design)

    def test_dynamic_replication_unsupported(self):
        design = Design.from_verilog("""
        module dynrep (input [3:0] a, input [1:0] n, output [7:0] y);
          assign y = {n{a}};
        endmodule
        """)
        with pytest.raises(BatchCompileError):
            BatchSimulator(design)


class TestPackingHelpers:
    @given(values=st.lists(st.integers(min_value=0, max_value=2 ** 16 - 1),
                           min_size=1, max_size=100),
           width=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_roundtrip(self, values, width):
        masked = [v & ((1 << width) - 1) for v in values]
        slices = pack_values(values, width)
        assert len(slices) == width
        assert unpack_values(slices, len(values)) == masked

    def test_pack_masks_to_width(self):
        assert unpack_values(pack_values([0x1FF], 8), 1) == [0xFF]
