"""Golden tests of the plan pass pipeline (fold / cse / sweep-vn / prune).

Every pass — alone, combined, or disabled — must be *value-neutral*: the
compiled plan's outputs are pinned bit-for-bit against the AST-walking
scalar oracle and against the completely unoptimised plan, on plain,
constant-heavy, CSE-heavy and locked designs.  The per-pass `plan.stats`
deltas are pinned alongside.
"""

import itertools
import random

import pytest

from repro.bench import load_benchmark
from repro.locking import AssureLocker, ERALocker
from repro.rtlir import Design
from repro.sim import (
    BatchSimulator,
    CombinationalSimulator,
    batch_to_vectors,
    compile_plan,
    random_input_batch,
)
from repro.sim.plan import PASS_ORDER, normalize_passes

CONST_HEAVY = """
module const_heavy (input [7:0] a, input [7:0] b,
                    output [7:0] x, output [8:0] y, output [7:0] z,
                    output w);
  wire [7:0] k = 8'h0F + 3;
  assign x = a ^ (2 * 3 + 1);
  assign y = b + k;
  assign z = (1 ? a : b) & {4'b1010, 4'b0101};
  assign w = (8'hF0 >> 4) > (2 + 1);
endmodule
"""

CSE_HEAVY = """
module cse_heavy (input [7:0] a, input [7:0] b, input [7:0] c,
                  output [8:0] x, output [8:0] y, output [8:0] z);
  wire [8:0] t = (a + b) ^ c;
  assign x = (a + b) ^ c;
  assign y = (a + b) + ((a + b) ^ c);
  assign z = t & (a + b);
endmodule
"""

#: Pass subsets exercised by the golden matrix: each optimisation alone,
#: nothing, everything.
PASS_SUBSETS = [
    ("lower",),
    ("fold", "lower"),
    ("cse", "lower"),
    ("sweep-vn", "lower"),
    ("lower", "prune"),
    PASS_ORDER,
]


def _locked(algorithm="era", name="SASC", scale=0.2, seed=0):
    design = load_benchmark(name, scale=scale, seed=seed)
    budget = max(1, int(0.75 * design.num_operations()))
    if algorithm == "era":
        locker = ERALocker(rng=random.Random(seed), track_metrics=False)
    else:
        locker = AssureLocker("serial", rng=random.Random(seed),
                              track_metrics=False)
    return locker.lock(design, budget).design


def _cross_check(design, passes, vectors=10, seed=0, key=None):
    """Outputs of a pass subset == no-pass plan == AST scalar oracle."""
    plain = BatchSimulator(design, plan=compile_plan(design,
                                                     passes=("lower",)))
    optimised = BatchSimulator(design, plan=compile_plan(design,
                                                         passes=passes))
    oracle = CombinationalSimulator(design, engine="ast")
    batch = random_input_batch(design, random.Random(seed), vectors)
    expected = plain.run_batch(batch, key=key, n=vectors)
    actual = optimised.run_batch(batch, key=key, n=vectors)
    assert actual == expected
    for lane, vector in enumerate(batch_to_vectors(batch, vectors)):
        reference = oracle.run(vector, key=key)
        for name, value in reference.items():
            assert actual[name][lane] == value


class TestGoldenMatrix:
    @pytest.mark.parametrize("passes", PASS_SUBSETS,
                             ids=["+".join(p) for p in PASS_SUBSETS])
    @pytest.mark.parametrize("source", [CONST_HEAVY, CSE_HEAVY],
                             ids=["const", "cse"])
    def test_plain_designs(self, source, passes):
        _cross_check(Design.from_verilog(source), passes)

    @pytest.mark.parametrize("passes", PASS_SUBSETS,
                             ids=["+".join(p) for p in PASS_SUBSETS])
    def test_era_locked_design(self, passes):
        locked = _locked("era")
        _cross_check(locked, passes, key=locked.correct_key, seed=1)

    @pytest.mark.parametrize("passes", PASS_SUBSETS,
                             ids=["+".join(p) for p in PASS_SUBSETS])
    def test_assure_locked_design_wrong_key(self, passes):
        locked = _locked("assure")
        wrong = [1 - bit for bit in locked.correct_key]
        _cross_check(locked, passes, key=wrong, seed=2)

    def test_cse_design_from_pr2_under_every_toggle_pair(self):
        """The PR 2 CSE design stays bit-identical for every cse × prune
        × fold × sweep-vn combination."""
        design = Design.from_verilog(CSE_HEAVY)
        for cse, prune, fold, vn in itertools.product((False, True),
                                                      repeat=4):
            plan = compile_plan(design, cse=cse, prune=prune, fold=fold,
                                sweep_vn=vn)
            simulator = BatchSimulator(design, plan=plan)
            batch = random_input_batch(design, random.Random(3), 6)
            reference = BatchSimulator(
                design, plan=compile_plan(design, passes=("lower",))
            ).run_batch(batch, n=6)
            assert simulator.run_batch(batch, n=6) == reference


class TestConstantFolding:
    def test_folds_identifier_free_subtrees(self):
        design = Design.from_verilog(CONST_HEAVY)
        plan = compile_plan(design)
        assert plan.stats.folded_constants >= 4

    def test_fold_disabled_reports_zero(self):
        design = Design.from_verilog(CONST_HEAVY)
        plan = compile_plan(design, fold=False)
        assert plan.stats.folded_constants == 0

    def test_fold_does_not_mutate_the_design_ast(self):
        design = Design.from_verilog(CONST_HEAVY)
        before = design.to_verilog()
        compile_plan(design)
        assert design.to_verilog() == before

    def test_fold_enables_static_replication(self):
        """A replication count like ``1 + 1`` only compiles folded."""
        design = Design.from_verilog("""
        module rep (input [3:0] a, output [7:0] y);
          assign y = {(1 + 1){a}};
        endmodule
        """)
        from repro.sim import BatchCompileError

        with pytest.raises(BatchCompileError):
            compile_plan(design, fold=False)
        simulator = BatchSimulator(design, plan=compile_plan(design))
        oracle = CombinationalSimulator(design, engine="ast")
        assert simulator.run({"a": 0b1011}) == oracle.run({"a": 0b1011})

    def test_part_select_bounds_left_untouched(self):
        """IntConst-ness of select bounds decides static widths — the fold
        pass must not rewrite them."""
        design = Design.from_verilog("""
        module sel (input [15:0] a, output [7:0] y);
          assign y = {a[11:4]} + 1;
        endmodule
        """)
        _cross_check(design, PASS_ORDER)


class TestSweepValueNumbering:
    def test_tags_and_vn_slots_on_locked_design(self):
        locked = _locked("era", name="I2C_SL", scale=0.25)
        plan = compile_plan(locked)
        assert plan.sweep_hoist
        assert plan.stats.invariant_steps > 0
        assert plan.stats.hoisted_subexprs > 0
        assert any(step.kind == "invariant" for step in plan.steps)
        # Tagged steps never read the key port, transitively.
        invariant_names = {name for name in plan.inputs
                           if name != locked.key_port}
        for step in plan.steps:
            if step.point_invariant:
                assert set(step.reads) <= invariant_names
                invariant_names.add(step.target)

    def test_disabled_pass_leaves_plan_untagged(self):
        locked = _locked("era")
        plan = compile_plan(locked, sweep_vn=False)
        assert not plan.sweep_hoist
        assert plan.stats.invariant_steps == 0
        assert plan.stats.hoisted_subexprs == 0
        assert all(not step.point_invariant for step in plan.steps)

    def test_unlocked_design_tags_everything(self):
        design = Design.from_verilog(CSE_HEAVY)
        plan = compile_plan(design)
        assert plan.sweep_hoist
        assert plan.stats.invariant_steps == plan.stats.steps
        assert plan.stats.hoisted_subexprs == 0


class TestPassManagerPlumbing:
    def test_stats_record_per_pass_deltas_in_order(self):
        locked = _locked("era")
        plan = compile_plan(locked)
        assert [d.name for d in plan.stats.passes] == list(PASS_ORDER)
        for delta in plan.stats.passes:
            assert delta.steps_before >= 0 and delta.steps_after >= 0
            assert delta.detail
        prune = plan.stats.passes[-1]
        assert prune.steps_before - prune.steps_after \
            == plan.stats.pruned_steps
        assert plan.stats.steps == prune.steps_after

    def test_toggles_and_passes_list_agree(self):
        design = Design.from_verilog(CSE_HEAVY)
        via_toggles = compile_plan(design, cse=True, prune=False,
                                   fold=False, sweep_vn=False)
        via_list = compile_plan(design, passes=("cse", "lower"))
        assert [d.name for d in via_toggles.stats.passes] \
            == [d.name for d in via_list.stats.passes]
        assert via_toggles.stats.cse_steps == via_list.stats.cse_steps

    def test_normalize_passes_inserts_lower_and_orders(self):
        assert normalize_passes(["prune", "cse"]) == ["cse", "lower",
                                                      "prune"]
        assert normalize_passes(["lower"]) == ["lower"]
        assert normalize_passes(PASS_ORDER) == list(PASS_ORDER)

    def test_unknown_pass_rejected(self):
        design = Design.from_verilog(CSE_HEAVY)
        with pytest.raises(ValueError, match="unknown plan pass"):
            compile_plan(design, passes=("turbo",))

    def test_legacy_stats_fields_still_pinned(self):
        """cse_steps/pruned_steps keep their pre-refactor meaning."""
        design = Design.from_verilog(CSE_HEAVY)
        plan = compile_plan(design)
        assert plan.stats.cse_steps >= 2
        no_cse = compile_plan(design, cse=False)
        assert no_cse.stats.cse_steps == 0
