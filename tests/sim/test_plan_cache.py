"""Process-wide plan cache: identity, sharing, invalidation, eviction."""

import random

import pytest

from repro.bench import load_benchmark, plus_network
from repro.locking import AssureLocker
from repro.rtlir import Design
from repro.sim import (
    BatchCompileError,
    cached_simulator,
    clear_plan_cache,
    get_plan,
    plan_cache_info,
    set_plan_cache_size,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    set_plan_cache_size(128)
    yield
    clear_plan_cache()
    set_plan_cache_size(128)


def _locked_md5(seed=0):
    design = load_benchmark("MD5", scale=0.15, seed=seed)
    budget = max(1, int(0.75 * design.num_operations()))
    return AssureLocker("serial", rng=random.Random(seed),
                        track_metrics=False).lock(design, budget).design


class TestFingerprint:
    def test_stable_and_memoized(self):
        design = _locked_md5()
        assert design.fingerprint() == design.fingerprint()

    def test_copies_share_fingerprint(self):
        design = _locked_md5()
        assert design.copy().fingerprint() == design.fingerprint()

    def test_different_designs_differ(self):
        assert _locked_md5(seed=0).fingerprint() != \
            _locked_md5(seed=1).fingerprint()

    def test_locking_mutation_changes_fingerprint(self):
        design = load_benchmark("FIR", scale=0.15, seed=0)
        before = design.fingerprint()
        locker = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False)
        locker.lock(design, key_budget=4, in_place=True)
        assert design.fingerprint() != before

    def test_key_metadata_does_not_affect_fingerprint(self):
        # The plan binds whatever key the caller passes; the recorded
        # correct values steer nothing in the netlist evaluation.
        design = _locked_md5()
        twin = design.copy()
        for bit in twin.key_bits:
            bit.correct_value = 1 - bit.correct_value
        assert twin.fingerprint() == design.fingerprint()

    def test_invalidate_fingerprint_recomputes(self):
        design = _locked_md5()
        before = design.fingerprint()
        design.invalidate_fingerprint()
        assert design.fingerprint() == before

    def test_lock_undo_relock_never_reuses_stale_fingerprint(self):
        # The memo token (key width, item count) returns to its prior value
        # across lock -> fingerprint -> undo -> lock-a-different-op, but the
        # netlist differs; LockingSession must invalidate explicitly.
        from repro.locking.base import LockingSession

        design = load_benchmark("FIR", scale=0.15, seed=0)
        session = LockingSession(design, rng=random.Random(0))
        candidates = session.all_ops()
        first = session.add_pair(candidates[0])
        locked_first = design.fingerprint()
        session.undo(first)
        session.add_pair(candidates[1])
        assert design.fingerprint() != locked_first


class TestTouch:
    SOURCE = """
    module editable (input [3:0] a, input [3:0] b, output [3:0] y);
      assign y = a + b;
    endmodule
    """

    def _design_and_op_node(self):
        from repro.verilog import ast_nodes as ast

        design = Design.from_verilog(self.SOURCE)
        (item,) = [i for i in design.top.items
                   if isinstance(i, ast.ContinuousAssign)]
        assert isinstance(item.rhs, ast.BinaryOp)
        return design, item.rhs

    def test_touch_invalidates_after_direct_ast_edit(self):
        design, node = self._design_and_op_node()
        before = design.fingerprint()
        node.op = "-"
        # Direct surgery leaves the cheap mutation token unchanged...
        assert design.fingerprint() == before
        # ...until the design is touched.
        assert design.touch() is design
        assert design.fingerprint() != before

    def test_stale_plan_cannot_be_served_after_touch(self):
        from repro.sim import cached_simulator

        design, node = self._design_and_op_node()
        plus = cached_simulator(design).run({"a": 7, "b": 2})
        assert plus["y"] == 9

        node.op = "-"
        design.touch()
        minus = cached_simulator(design).run({"a": 7, "b": 2})
        assert minus["y"] == 5, "stale '+' plan must not be served"
        # The scalar oracle agrees with the freshly compiled plan.
        from repro.sim import CombinationalSimulator
        assert CombinationalSimulator(design).run({"a": 7, "b": 2})["y"] == 5

    def test_touch_is_idempotent_on_unmutated_designs(self):
        design, _ = self._design_and_op_node()
        before = design.fingerprint()
        assert design.touch().fingerprint() == before
        assert get_plan(design) is get_plan(design.touch())


class TestWarmPlanCache:
    def test_warming_precompiles(self):
        from repro.sim import warm_plan_cache

        design = _locked_md5()
        assert warm_plan_cache(design) is True
        misses = plan_cache_info().misses
        get_plan(design)
        assert plan_cache_info().misses == misses, "warmed plan must hit"

    def test_warming_never_raises_on_uncompilable_designs(self):
        from repro.sim import warm_plan_cache

        design = Design.from_verilog("""
        module dynrep (input [3:0] a, input [1:0] n, output [7:0] y);
          assign y = {n{a}};
        endmodule
        """)
        assert warm_plan_cache(design) is False


class TestPlanCache:
    def test_second_lookup_hits(self):
        design = _locked_md5()
        first = get_plan(design)
        second = get_plan(design)
        assert first is second
        info = plan_cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1

    def test_copies_share_one_compilation(self):
        design = _locked_md5()
        assert get_plan(design) is get_plan(design.copy())
        assert plan_cache_info().misses == 1

    def test_cached_simulator_matches_direct_simulation(self):
        design = _locked_md5()
        simulator = cached_simulator(design)
        assert simulator.plan is get_plan(design)
        batch = simulator.random_batch(random.Random(0), 4)
        from repro.sim import BatchSimulator
        direct = BatchSimulator(design)
        assert simulator.run_batch(batch, key=design.correct_key, n=4) == \
            direct.run_batch(batch, key=design.correct_key, n=4)

    def test_compile_failure_cached_negatively(self):
        design = Design.from_verilog("""
        module dynrep (input [3:0] a, input [1:0] n, output [7:0] y);
          assign y = {n{a}};
        endmodule
        """)
        with pytest.raises(BatchCompileError):
            get_plan(design)
        with pytest.raises(BatchCompileError):
            get_plan(design)
        info = plan_cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_lru_eviction(self):
        set_plan_cache_size(2)
        designs = [plus_network(4 + i, n_inputs=2, name=f"p{i}")
                   for i in range(3)]
        for design in designs:
            get_plan(design)
        assert plan_cache_info().size == 2
        # The oldest entry was evicted: looking it up again is a miss.
        before = plan_cache_info().misses
        get_plan(designs[0])
        assert plan_cache_info().misses == before + 1

    def test_set_size_rejects_non_positive(self):
        with pytest.raises(ValueError):
            set_plan_cache_size(0)

    def test_consumers_share_the_cache(self):
        design = load_benchmark("FIR", scale=0.15, seed=0)
        budget = max(1, int(0.75 * design.num_operations()))
        locked = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False).lock(design, budget).design
        from repro.attacks.kpa import functional_kpa
        from repro.locking import key_bit_sensitivity
        from repro.sim import check_equivalence

        check_equivalence(design, locked, key=locked.correct_key, vectors=8,
                          rng=random.Random(1))
        misses_after_first = plan_cache_info().misses
        functional_kpa(locked, locked.correct_key, vectors=8,
                       rng=random.Random(2))
        key_bit_sensitivity(locked, vectors=8, rng=random.Random(3))
        info = plan_cache_info()
        # The locked design compiled once; later consumers only hit.
        assert info.misses == misses_after_first
        assert info.hits > 0
