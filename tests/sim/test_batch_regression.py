"""Regression tests: the batch fast path changes *speed*, never *numbers*.

Every metric that previously ran through the scalar simulator — equivalence
reports, output-corruption rates, attack-side KPA bookkeeping — must be
numerically identical when computed through the bit-parallel engine, on the
seed benchmark profiles the paper's evaluation uses.
"""

import random

import pytest

from repro.attacks import SnapShotAttack
from repro.attacks.kpa import functional_kpa, kpa
from repro.bench import load_benchmark
from repro.locking import (
    AssureLocker,
    ERALocker,
    flip_bits,
    functional_corruption,
    key_bit_sensitivity,
)
from repro.sim import check_equivalence, output_corruption
from repro.sim.bench import compare_engines

#: Seed benchmark profiles covered by the engine-equality regression.
PROFILES = ["MD5", "FIR", "SASC"]


def _locked_benchmark(name, seed=0, scale=0.15):
    design = load_benchmark(name, scale=scale, seed=seed)
    budget = max(1, int(0.75 * design.num_operations()))
    locked = AssureLocker("serial", rng=random.Random(seed),
                          track_metrics=False).lock(design, budget).design
    return design, locked


class TestEngineEqualityOnSeedProfiles:
    @pytest.mark.parametrize("name", PROFILES)
    def test_equivalence_reports_identical(self, name):
        design, locked = _locked_benchmark(name)
        key = locked.correct_key
        batch = check_equivalence(design, locked, key=key, vectors=40,
                                  rng=random.Random(1), engine="batch")
        scalar = check_equivalence(design, locked, key=key, vectors=40,
                                   rng=random.Random(1), engine="scalar")
        assert batch.vectors == scalar.vectors
        assert batch.mismatches == scalar.mismatches
        assert batch.first_mismatch == scalar.first_mismatch
        assert batch.equivalent

    @pytest.mark.parametrize("name", PROFILES)
    def test_wrong_key_reports_identical(self, name):
        design, locked = _locked_benchmark(name)
        correct = locked.correct_key
        wrong = flip_bits(correct, range(0, len(correct), 2))
        batch = check_equivalence(design, locked, key=wrong, vectors=30,
                                  rng=random.Random(2), engine="batch")
        scalar = check_equivalence(design, locked, key=wrong, vectors=30,
                                   rng=random.Random(2), engine="scalar")
        assert batch.mismatches == scalar.mismatches
        assert batch.first_mismatch == scalar.first_mismatch

    @pytest.mark.parametrize("name", PROFILES)
    def test_corruption_rates_identical(self, name):
        _, locked = _locked_benchmark(name)
        correct = locked.correct_key
        wrong = flip_bits(correct, range(len(correct)))
        batch = output_corruption(locked, correct, wrong, vectors=40,
                                  rng=random.Random(3), engine="batch")
        scalar = output_corruption(locked, correct, wrong, vectors=40,
                                   rng=random.Random(3), engine="scalar")
        assert batch == scalar

    def test_unknown_engine_rejected(self):
        design, locked = _locked_benchmark("FIR")
        with pytest.raises(ValueError):
            check_equivalence(design, locked, key=locked.correct_key,
                              engine="turbo")
        with pytest.raises(ValueError):
            output_corruption(locked, locked.correct_key,
                              locked.correct_key, engine="turbo")


class TestFunctionalMetrics:
    def test_corruption_report_bounds(self):
        _, locked = _locked_benchmark("FIR")
        report = functional_corruption(locked, vectors=24, wrong_keys=4,
                                       rng=random.Random(0))
        assert report.vectors == 24 and report.wrong_keys == 4
        assert len(report.per_key_rates) == 4
        assert all(0.0 <= rate <= 1.0 for rate in report.per_key_rates)
        assert 0.0 <= report.avalanche <= 1.0
        assert report.min_corruption <= report.mean_corruption
        # ASSURE-locked FIR must visibly corrupt under random wrong keys.
        assert report.mean_corruption > 0.0

    def test_corruption_requires_locked_design(self):
        design = load_benchmark("FIR", scale=0.15, seed=0)
        with pytest.raises(ValueError):
            functional_corruption(design)

    def test_key_bit_sensitivity_profile(self):
        _, locked = _locked_benchmark("SASC")
        profile = key_bit_sensitivity(locked, vectors=16,
                                      rng=random.Random(1))
        assert len(profile) == locked.key_width
        assert all(0.0 <= value <= 1.0 for value in profile)
        assert any(value > 0.0 for value in profile)

    def test_sensitivity_is_deterministic_per_seed(self):
        _, locked = _locked_benchmark("FIR")
        first = key_bit_sensitivity(locked, vectors=16, rng=random.Random(5))
        second = key_bit_sensitivity(locked, vectors=16, rng=random.Random(5))
        assert first == second


class TestFunctionalKpa:
    def test_correct_key_scores_100(self):
        _, locked = _locked_benchmark("FIR")
        assert functional_kpa(locked, locked.correct_key, vectors=24,
                              rng=random.Random(0)) == 100.0

    def test_fully_flipped_key_scores_low(self):
        _, locked = _locked_benchmark("FIR")
        wrong = flip_bits(locked.correct_key, range(locked.key_width))
        value = functional_kpa(locked, wrong, vectors=24,
                               rng=random.Random(1))
        assert 0.0 <= value < 100.0

    def test_length_mismatch_rejected(self):
        _, locked = _locked_benchmark("FIR")
        with pytest.raises(ValueError):
            functional_kpa(locked, [0])

    def test_attack_reports_functional_kpa_when_enabled(self):
        _, locked = _locked_benchmark("SASC", seed=3)
        attack = SnapShotAttack(rounds=4, time_budget=0.5,
                                functional_vectors=16,
                                rng=random.Random(0))
        result = attack.attack(locked)
        assert result.functional_kpa is not None
        assert 0.0 <= result.functional_kpa <= 100.0
        assert result.kpa == kpa(result.predicted_key, result.correct_key)

    def test_attack_skips_functional_kpa_by_default(self):
        _, locked = _locked_benchmark("SASC", seed=3)
        attack = SnapShotAttack(rounds=4, time_budget=0.5,
                                rng=random.Random(0))
        result = attack.attack(locked)
        assert result.functional_kpa is None


class TestMicroBenchmarkHarness:
    def test_compare_engines_cross_checks(self):
        design, locked = _locked_benchmark("FIR")
        comparison = compare_engines(locked, vectors=64,
                                     rng=random.Random(0), repeats=1)
        assert comparison.outputs_match
        assert comparison.vectors == 64
        assert comparison.scalar_seconds > 0.0
        assert comparison.batch_seconds > 0.0

    def test_compare_engines_validates_arguments(self):
        design = load_benchmark("FIR", scale=0.1, seed=0)
        with pytest.raises(ValueError):
            compare_engines(design, vectors=0)
        with pytest.raises(ValueError):
            compare_engines(design, repeats=0)


class TestReviewRegressions:
    def test_functional_validation_does_not_shift_attack_rng(self):
        """Enabling functional_vectors must not change bit-level KPA results."""
        _, locked_a = _locked_benchmark("SASC", seed=7)
        _, locked_b = _locked_benchmark("SASC", seed=7)
        plain = SnapShotAttack(rounds=4, time_budget=0.5,
                               rng=random.Random(11)).attack_many([locked_a,
                                                                   locked_b])
        validated = SnapShotAttack(rounds=4, time_budget=0.5,
                                   functional_vectors=16,
                                   rng=random.Random(11)).attack_many(
            [locked_a, locked_b])
        for before, after in zip(plain, validated):
            assert before.predicted_key == after.predicted_key
            assert before.kpa == after.kpa
        assert all(r.functional_kpa is not None for r in validated)

    def test_key_bit_sensitivity_restricted_indices(self):
        _, locked = _locked_benchmark("FIR")
        full = key_bit_sensitivity(locked, vectors=16, rng=random.Random(5))
        subset = [0, locked.key_width - 1]
        restricted = key_bit_sensitivity(locked, vectors=16,
                                         rng=random.Random(5),
                                         key_indices=subset)
        assert restricted == [full[subset[0]], full[subset[1]]]
        with pytest.raises(ValueError):
            key_bit_sensitivity(locked, key_indices=[locked.key_width])

    def test_restricted_behavioral_extraction_matches_full(self):
        from repro.attacks import LocalityExtractor
        _, locked = _locked_benchmark("SASC")
        extractor = LocalityExtractor("behavioral", behavior_vectors=16)
        full, _ = extractor.extract_matrix(locked)
        subset = [1, 3]
        restricted, _ = extractor.extract_matrix(locked, key_indices=subset)
        for row, index in enumerate(subset):
            assert restricted[row].tolist() == full[index].tolist()
