"""The scalar engine as a lane-width-1 interpreter over the compiled plan.

Three-way agreement is the acceptance bar of the engine unification:
*plan-executed scalar* == *legacy AST-walking scalar* == *batch engine*, on
every fixture design — plus the automatic AST fallback for constructs the
plan compiler cannot express.
"""

import random

import pytest

from repro.bench import load_benchmark, plus_network
from repro.locking import AssureLocker, ERALocker
from repro.rtlir import Design, KeyBit
from repro.sim import (
    BatchSimulator,
    CombinationalSimulator,
    SimulationError,
    batch_to_vectors,
    random_input_batch,
    random_key,
)

FIXTURE_PROFILES = ["MD5", "FIR", "SASC", "DFT", "IIR"]


def _uncompilable_design():
    """Dynamic replication: only the AST walker can evaluate this."""
    design = Design.from_verilog("""
    module oddball (input [3:0] a, input [1:0] n, output [7:0] y);
      assign y = {n{a}};
    endmodule
    """)
    return design


class TestThreeWayAgreement:
    @pytest.mark.parametrize("profile", FIXTURE_PROFILES)
    def test_plan_scalar_equals_ast_scalar_equals_batch(self, profile):
        design = load_benchmark(profile, scale=0.15, seed=0)
        plan_scalar = CombinationalSimulator(design)  # engine="plan"
        ast_scalar = CombinationalSimulator(design, engine="ast")
        batch = BatchSimulator(design)
        inputs = random_input_batch(design, random.Random(1), 8)
        batched = batch.run_batch(inputs, n=8)
        for lane, vector in enumerate(batch_to_vectors(inputs, 8)):
            via_plan = plan_scalar.run(vector)
            via_ast = ast_scalar.run(vector)
            assert via_plan == via_ast
            for name, value in via_ast.items():
                assert batched[name][lane] == value

    @pytest.mark.parametrize("algorithm", ["assure", "era"])
    def test_locked_designs_under_random_keys(self, algorithm):
        design = load_benchmark("SASC", scale=0.2, seed=0)
        budget = max(1, int(0.75 * design.num_operations()))
        locker = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False) if algorithm == "assure" \
            else ERALocker(rng=random.Random(0), track_metrics=False)
        locked = locker.lock(design, budget).design
        plan_scalar = CombinationalSimulator(locked)
        ast_scalar = CombinationalSimulator(locked, engine="ast")
        rng = random.Random(2)
        for key in (locked.correct_key,
                    random_key(locked.key_width, rng),
                    random_key(locked.key_width, rng)):
            vector = ast_scalar.random_vector(rng)
            assert plan_scalar.run(vector, key=key) \
                == ast_scalar.run(vector, key=key)

    def test_key_defaults_to_zero_in_both_modes(self):
        design = load_benchmark("SASC", scale=0.2, seed=0)
        budget = max(1, int(0.5 * design.num_operations()))
        locked = AssureLocker("serial", rng=random.Random(0),
                              track_metrics=False).lock(design,
                                                        budget).design
        vector = CombinationalSimulator(locked).random_vector(
            random.Random(3))
        assert CombinationalSimulator(locked).run(vector) \
            == CombinationalSimulator(locked, engine="ast").run(vector)


class TestFallbackAndErrors:
    def test_uncompilable_design_falls_back_to_ast(self):
        design = _uncompilable_design()
        simulator = CombinationalSimulator(design)
        oracle = CombinationalSimulator(design, engine="ast")
        outputs = simulator.run({"a": 0b1011, "n": 2})
        assert outputs == oracle.run({"a": 0b1011, "n": 2})
        assert simulator._plan_failed  # fell back, permanently

    def test_compilable_design_executes_the_cached_plan(self):
        from repro.sim import clear_plan_cache, plan_cache_info

        design = plus_network(16, n_inputs=4, name="plus_scalar")
        clear_plan_cache()
        simulator = CombinationalSimulator(design)
        simulator.run({"in0": 1})
        simulator.run({"in1": 2})
        info = plan_cache_info()
        assert info.misses == 1  # compiled once, reused

    def test_unknown_input_rejected_in_both_modes(self):
        design = plus_network(8, n_inputs=4, name="plus_err")
        for engine in ("plan", "ast"):
            with pytest.raises(SimulationError):
                CombinationalSimulator(design, engine=engine).run({"zz": 1})

    def test_invalid_key_bits_rejected_in_both_modes(self):
        design = Design.from_verilog("""
        module locked1 (input [3:0] a, input lock_key, output [3:0] y);
          assign y = lock_key ? (a + 1) : (a - 1);
        endmodule
        """)
        design.key_port = "lock_key"
        design.key_bits = [KeyBit(index=0, kind="operation",
                                  correct_value=1)]
        for engine in ("plan", "ast"):
            with pytest.raises(SimulationError):
                CombinationalSimulator(design, engine=engine).run(
                    {"a": 1}, key=[2])

    def test_unknown_engine_rejected(self):
        design = plus_network(8, n_inputs=4, name="plus_eng")
        with pytest.raises(ValueError):
            CombinationalSimulator(design, engine="turbo")

    def test_dependency_cycle_detected_at_init_in_both_modes(self):
        source = """
        module loop (input [3:0] a, output [3:0] y);
          wire [3:0] u;
          wire [3:0] v = u + a;
          assign u = v + 1;
          assign y = v;
        endmodule
        """
        for engine in ("plan", "ast"):
            with pytest.raises(SimulationError):
                CombinationalSimulator(Design.from_verilog(source),
                                       engine=engine)
