"""Property-based test: locking preserves function under the correct key.

For random combinational designs and every locking algorithm, the locked
design driven with its correct key must be functionally equivalent to the
original design on random input vectors.  This is the core functional
contract of RTL locking (and of the AddPair/branch/constant transformations
in particular).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import profile_design
from repro.bench.profiles import BenchmarkProfile
from repro.locking import AssureLocker, ERALocker, HRALocker
from repro.sim import check_equivalence

#: Operators drawn by the random profiles; division/modulo are included to
#: exercise the divide-by-zero convention as well.
_OPERATORS = ["+", "-", "*", "/", "^", "&", "|", "<<", ">>", "<", "==", "%"]


@st.composite
def combinational_profiles(draw):
    n_types = draw(st.integers(min_value=2, max_value=5))
    operators = draw(st.permutations(_OPERATORS))[:n_types]
    operations = {op: draw(st.integers(min_value=1, max_value=5))
                  for op in operators}
    return BenchmarkProfile(name="hyp_sim_profile",
                            description="hypothesis simulation profile",
                            operations=operations, sequential=False,
                            n_inputs=4, width=8)


LOCKERS = {
    "assure": lambda rng: AssureLocker("random", rng=rng, track_metrics=False),
    "hra": lambda rng: HRALocker(rng=rng, track_metrics=False),
    "era": lambda rng: ERALocker(rng=rng, track_metrics=False),
}


class TestLockingPreservesFunction:
    @given(profile=combinational_profiles(),
           seed=st.integers(0, 2 ** 16),
           algorithm=st.sampled_from(sorted(LOCKERS)))
    @settings(max_examples=25, deadline=None)
    def test_correct_key_is_functionally_transparent(self, profile, seed, algorithm):
        design = profile_design(profile, seed=seed)
        budget = max(1, design.num_operations() // 2)
        locked = LOCKERS[algorithm](random.Random(seed)).lock(design, budget)
        report = check_equivalence(design, locked.design,
                                   key=locked.design.correct_key,
                                   vectors=12, rng=random.Random(seed + 1))
        assert report.equivalent, (algorithm, report.first_mismatch)

    @given(profile=combinational_profiles(), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=15, deadline=None)
    def test_relocking_keeps_transparency(self, profile, seed):
        design = profile_design(profile, seed=seed)
        first = AssureLocker("random", rng=random.Random(seed),
                             track_metrics=False).lock(
            design, max(1, design.num_operations() // 3))
        second = AssureLocker("random", rng=random.Random(seed + 1),
                              track_metrics=False).relock(
            first.design, max(1, design.num_operations() // 3))
        report = check_equivalence(design, second.design,
                                   key=second.design.correct_key,
                                   vectors=10, rng=random.Random(seed + 2))
        assert report.equivalent, report.first_mismatch
