"""Unit tests for the budgeted auto-ML search."""

import numpy as np
import pytest

from repro.ml import AutoMLClassifier, CandidateSpec, DecisionTreeClassifier, accuracy
from repro.ml.automl import default_candidates
from repro.ml.base import NotFittedError


@pytest.fixture
def categorical_dataset():
    rng = np.random.default_rng(0)
    features = rng.integers(1, 6, size=(300, 2)).astype(float)
    labels = (features[:, 0] == 1).astype(int)
    return features, labels


class TestSearch:
    def test_fit_selects_a_model_and_predicts(self, categorical_dataset):
        features, labels = categorical_dataset
        model = AutoMLClassifier(time_budget=5.0, random_state=0)
        model.fit(features, labels)
        assert model.best_model_name
        predictions = model.predict(features)
        assert accuracy(labels, predictions) > 0.9
        probabilities = model.predict_proba(features[:5])
        assert probabilities.shape == (5, 2)

    def test_leaderboard_sorted_best_first(self, categorical_dataset):
        features, labels = categorical_dataset
        model = AutoMLClassifier(time_budget=5.0, random_state=0)
        model.fit(features, labels)
        board = model.leaderboard_summary()
        assert len(board) >= 2
        scores = [entry["mean_cv_accuracy"] for entry in board]
        assert scores == sorted(scores, reverse=True)
        # The winner follows a one-standard-error rule: its score is within
        # one standard error of the top of the leaderboard.
        winner = next(e for e in board if e["name"] == model.best_model_name)
        best_scores = model.leaderboard_[0].scores
        import numpy as np
        tolerance = float(np.std(best_scores)) / max(np.sqrt(len(best_scores)), 1)
        assert winner["mean_cv_accuracy"] >= scores[0] - tolerance - 1e-9

    def test_tiny_time_budget_still_evaluates_one_candidate(self, categorical_dataset):
        features, labels = categorical_dataset
        model = AutoMLClassifier(time_budget=1e-3, random_state=0)
        model.fit(features, labels)
        assert len(model.leaderboard_) >= 1

    def test_max_candidates_cap(self, categorical_dataset):
        features, labels = categorical_dataset
        model = AutoMLClassifier(time_budget=30.0, max_candidates=3, random_state=0)
        model.fit(features, labels)
        assert len(model.leaderboard_) <= 3

    def test_custom_candidate_roster(self, categorical_dataset):
        features, labels = categorical_dataset
        roster = [CandidateSpec("only_tree",
                                lambda: DecisionTreeClassifier(max_depth=3))]
        model = AutoMLClassifier(time_budget=5.0, candidates=roster)
        model.fit(features, labels)
        assert model.best_model_name == "only_tree"

    def test_invalid_time_budget(self):
        with pytest.raises(ValueError):
            AutoMLClassifier(time_budget=0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            AutoMLClassifier().predict([[1.0, 2.0]])

    def test_tiny_training_set_does_not_crash(self):
        model = AutoMLClassifier(time_budget=2.0, max_candidates=2, random_state=0)
        model.fit([[1.0, 2.0], [2.0, 1.0]], [0, 1])
        assert model.predict([[1.0, 2.0]]).shape == (1,)

    def test_clone_preserves_configuration(self):
        model = AutoMLClassifier(time_budget=3.0, max_candidates=4, random_state=7)
        clone = model.clone()
        assert clone.time_budget == 3.0
        assert clone.max_candidates == 4
        assert clone.random_state == 7


class TestDefaultRoster:
    def test_roster_covers_multiple_model_families(self):
        names = [spec.name for spec in default_candidates()]
        assert len(names) == len(set(names))
        families = {"nb": any("nb" in n for n in names),
                    "tree": any("tree" in n for n in names),
                    "forest": any("forest" in n for n in names),
                    "knn": any("knn" in n for n in names),
                    "linear": any("logistic" in n for n in names),
                    "mlp": any("mlp" in n for n in names)}
        assert all(families.values())


class TestDeterministicMode:
    def test_budget_maps_to_candidate_count(self, categorical_dataset):
        features, labels = categorical_dataset
        model = AutoMLClassifier(time_budget=3.0, random_state=0,
                                 deterministic=True)
        model.fit(features, labels)
        # Exactly the first three roster candidates were evaluated — no
        # wall-clock truncation, no machine dependence.
        assert len(model.leaderboard_) == 3
        roster_names = [spec.name for spec in default_candidates(0)[:3]]
        assert sorted(r.spec.name for r in model.leaderboard_) == \
            sorted(roster_names)

    def test_tiny_budget_still_evaluates_one_candidate(self, categorical_dataset):
        features, labels = categorical_dataset
        model = AutoMLClassifier(time_budget=1e-3, random_state=0,
                                 deterministic=True)
        model.fit(features, labels)
        assert len(model.leaderboard_) == 1

    def test_respects_max_candidates_cap(self, categorical_dataset):
        features, labels = categorical_dataset
        model = AutoMLClassifier(time_budget=10.0, max_candidates=2,
                                 random_state=0, deterministic=True)
        model.fit(features, labels)
        assert len(model.leaderboard_) == 2

    def test_repeated_fits_pick_the_same_winner(self, categorical_dataset):
        features, labels = categorical_dataset
        winners = set()
        for _ in range(3):
            model = AutoMLClassifier(time_budget=4.0, random_state=3,
                                     deterministic=True)
            model.fit(features, labels)
            winners.add(model.best_model_name)
        assert len(winners) == 1
