"""Unit tests for the ML base utilities."""

import numpy as np
import pytest

from repro.ml.base import (
    Estimator,
    NotFittedError,
    check_features,
    check_features_labels,
    encode_labels,
    one_hot,
    sigmoid,
    softmax,
)
from repro.ml import DecisionTreeClassifier, GaussianNB


class TestValidation:
    def test_check_features_labels_happy_path(self):
        features, labels = check_features_labels([[1, 2], [3, 4]], [0, 1])
        assert features.shape == (2, 2)
        assert labels.shape == (2,)

    def test_1d_features_promoted(self):
        features, _ = check_features_labels([1, 2, 3], [0, 1, 0])
        assert features.shape == (3, 1)

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            check_features_labels(np.zeros((0, 2)), np.zeros((0,)))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            check_features_labels([[1], [2]], [0])

    def test_check_features_dimension_enforced(self):
        with pytest.raises(ValueError):
            check_features([[1, 2]], n_features=3)


class TestEncodings:
    def test_encode_labels(self):
        classes, encoded = encode_labels(np.array(["b", "a", "b"]))
        assert list(classes) == ["a", "b"]
        assert list(encoded) == [1, 0, 1]

    def test_one_hot(self):
        matrix = one_hot(np.array([0, 2, 1]), 3)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert matrix[1, 2] == 1.0


class TestNumerics:
    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, 1000.0]])
        probabilities = softmax(logits)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert not np.any(np.isnan(probabilities))

    def test_sigmoid_bounds_and_stability(self):
        values = np.array([-1000.0, -1.0, 0.0, 1.0, 1000.0])
        result = sigmoid(values)
        assert np.all(result >= 0.0) and np.all(result <= 1.0)
        assert result[2] == pytest.approx(0.5)


class TestEstimatorInterface:
    def test_get_set_params_and_clone(self):
        model = DecisionTreeClassifier(max_depth=3, min_samples_leaf=2)
        params = model.get_params()
        assert params["max_depth"] == 3
        clone = model.clone()
        assert clone is not model
        assert clone.get_params() == params
        model.set_params(max_depth=7)
        assert model.max_depth == 7
        assert clone.max_depth == 3

    def test_set_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            GaussianNB().set_params(bogus=1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GaussianNB().predict([[1.0, 2.0]])

    def test_base_estimator_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Estimator().fit(np.zeros((2, 2)), np.zeros(2))
        with pytest.raises(NotImplementedError):
            Estimator().predict_proba(np.zeros((2, 2)))
