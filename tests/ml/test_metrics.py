"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    balanced_accuracy,
    confusion_matrix,
    log_loss,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0
        assert accuracy([1, 0, 1], [0, 1, 0]) == 0.0

    def test_partial(self):
        assert accuracy([1, 1, 0, 0], [1, 0, 0, 0]) == 0.75

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 0], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_counts(self):
        matrix, classes = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert list(classes) == [0, 1]
        assert matrix[0, 0] == 1   # true 0 predicted 0
        assert matrix[0, 1] == 1   # true 0 predicted 1
        assert matrix[1, 1] == 2

    def test_explicit_class_order(self):
        matrix, classes = confusion_matrix([1, 1], [1, 1], classes=[0, 1])
        assert matrix[0].sum() == 0
        assert matrix[1, 1] == 2


class TestPrecisionRecallF1:
    def test_values(self):
        scores = precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0])
        assert scores["precision"] == pytest.approx(0.5)
        assert scores["recall"] == pytest.approx(0.5)
        assert scores["f1"] == pytest.approx(0.5)

    def test_no_positive_predictions(self):
        scores = precision_recall_f1([1, 1], [0, 0])
        assert scores["precision"] == 0.0
        assert scores["recall"] == 0.0
        assert scores["f1"] == 0.0


class TestBalancedAccuracy:
    def test_imbalanced_case(self):
        true = [0] * 90 + [1] * 10
        predicted = [0] * 100
        assert accuracy(true, predicted) == pytest.approx(0.9)
        assert balanced_accuracy(true, predicted) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            balanced_accuracy([], [])


class TestLogLoss:
    def test_confident_correct_is_small(self):
        probabilities = np.array([[0.99, 0.01], [0.01, 0.99]])
        loss = log_loss([0, 1], probabilities, classes=[0, 1])
        assert loss < 0.05

    def test_confident_wrong_is_large(self):
        probabilities = np.array([[0.01, 0.99]])
        loss = log_loss([0], probabilities, classes=[0, 1])
        assert loss > 3.0
