"""Property-based tests for the ML substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.ml import CategoricalNB, DecisionTreeClassifier, GaussianNB, accuracy
from repro.ml.base import one_hot, sigmoid, softmax
from repro.ml.metrics import balanced_accuracy

_float_matrices = npst.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 20), st.integers(1, 4)),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
)


class TestNumericProperties:
    @given(_float_matrices)
    @settings(max_examples=100, deadline=None)
    def test_softmax_is_a_distribution(self, matrix):
        probabilities = softmax(matrix)
        assert np.allclose(probabilities.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(probabilities >= 0.0)

    @given(npst.arrays(dtype=float, shape=st.integers(1, 50),
                       elements=st.floats(-1e6, 1e6, allow_nan=False)))
    @settings(max_examples=100, deadline=None)
    def test_sigmoid_bounds_and_monotonicity(self, values):
        result = sigmoid(values)
        assert np.all(result >= 0.0) and np.all(result <= 1.0)
        order = np.argsort(values)
        assert np.all(np.diff(result[order]) >= -1e-12)

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_one_hot_rows(self, codes):
        matrix = one_hot(np.array(codes), 5)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix.argmax(axis=1) == np.array(codes))


class TestMetricProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=50), st.data())
    @settings(max_examples=100, deadline=None)
    def test_accuracy_bounds_and_self_accuracy(self, labels, data):
        predictions = data.draw(st.lists(st.integers(0, 1),
                                         min_size=len(labels),
                                         max_size=len(labels)))
        value = accuracy(labels, predictions)
        assert 0.0 <= value <= 1.0
        assert accuracy(labels, labels) == 1.0

    @given(st.lists(st.integers(0, 2), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_balanced_accuracy_perfect_prediction(self, labels):
        assert balanced_accuracy(labels, labels) == 1.0


class TestClassifierProperties:
    @given(
        npst.arrays(dtype=float, shape=st.tuples(st.integers(6, 30), st.just(2)),
                    elements=st.floats(-5, 5, allow_nan=False)),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_predictions_are_valid_labels(self, features, data):
        labels = np.array(data.draw(st.lists(st.integers(0, 1),
                                             min_size=features.shape[0],
                                             max_size=features.shape[0])))
        for model in (DecisionTreeClassifier(max_depth=3), GaussianNB(),
                      CategoricalNB()):
            model.fit(features, labels)
            predictions = model.predict(features)
            assert set(np.unique(predictions)) <= set(np.unique(labels))
            probabilities = model.predict_proba(features)
            assert np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)

    @given(st.integers(2, 40), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_tree_fits_constant_features(self, n_samples, seed):
        rng = np.random.default_rng(seed)
        features = np.ones((n_samples, 3))
        labels = rng.integers(0, 2, size=n_samples)
        tree = DecisionTreeClassifier().fit(features, labels)
        # No split is possible; the tree must fall back to the majority class.
        majority = int(np.round(labels.mean())) if labels.mean() != 0.5 else None
        predictions = tree.predict(features)
        assert len(set(predictions)) == 1
        if majority is not None:
            assert predictions[0] == majority
