"""Unit tests for dataset splitting and cross-validation."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, KFold, cross_val_score, train_test_split


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(80, 3))
    labels = (features[:, 0] > 0).astype(int)
    return features, labels


class TestTrainTestSplit:
    def test_sizes(self, dataset):
        features, labels = dataset
        train_x, test_x, train_y, test_y = train_test_split(
            features, labels, test_fraction=0.25, rng=np.random.default_rng(1))
        assert len(test_x) == 20
        assert len(train_x) == 60
        assert len(train_y) == len(train_x)
        assert len(test_y) == len(test_x)

    def test_no_overlap_and_full_coverage(self, dataset):
        features, labels = dataset
        train_x, test_x, _, _ = train_test_split(
            features, labels, 0.25, rng=np.random.default_rng(2))
        assert len(train_x) + len(test_x) == len(features)

    def test_stratified_preserves_ratio(self):
        labels = np.array([0] * 90 + [1] * 10)
        features = np.arange(100).reshape(-1, 1)
        _, _, _, test_y = train_test_split(features, labels, 0.2,
                                           rng=np.random.default_rng(3),
                                           stratify=True)
        assert 0 < np.mean(test_y) < 0.2

    def test_invalid_fraction(self, dataset):
        features, labels = dataset
        with pytest.raises(ValueError):
            train_test_split(features, labels, 0.0)
        with pytest.raises(ValueError):
            train_test_split(features, labels, 1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split([[1], [2]], [0], 0.5)


class TestKFold:
    def test_folds_partition_the_data(self):
        splitter = KFold(n_splits=4, rng=np.random.default_rng(0))
        seen = []
        for train_indices, test_indices in splitter.split(20):
            assert len(np.intersect1d(train_indices, test_indices)) == 0
            assert len(train_indices) + len(test_indices) == 20
            seen.extend(test_indices.tolist())
        assert sorted(seen) == list(range(20))

    def test_number_of_folds(self):
        splitter = KFold(n_splits=5, rng=np.random.default_rng(0))
        assert len(list(splitter.split(50))) == 5

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_invalid_split_count(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_unshuffled_folds_are_contiguous(self):
        splitter = KFold(n_splits=2, shuffle=False)
        folds = list(splitter.split(10))
        assert folds[0][1].tolist() == [0, 1, 2, 3, 4]


class TestCrossValScore:
    def test_scores_reflect_learnable_data(self, dataset):
        features, labels = dataset
        scores = cross_val_score(DecisionTreeClassifier(max_depth=3),
                                 features, labels, n_splits=4,
                                 rng=np.random.default_rng(1))
        assert scores.shape == (4,)
        assert scores.mean() > 0.8

    def test_model_instance_left_unfitted(self, dataset):
        features, labels = dataset
        model = DecisionTreeClassifier(max_depth=3)
        cross_val_score(model, features, labels, n_splits=3,
                        rng=np.random.default_rng(2))
        assert not hasattr(model, "_root")
