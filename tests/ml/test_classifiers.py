"""Unit tests shared across all classifiers plus model-specific checks."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    CategoricalNB,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    accuracy,
)

ALL_CLASSIFIERS = [
    pytest.param(lambda: LogisticRegression(n_iterations=300, random_state=0),
                 id="logistic"),
    pytest.param(lambda: DecisionTreeClassifier(max_depth=6, random_state=0),
                 id="tree"),
    pytest.param(lambda: RandomForestClassifier(n_estimators=15, max_depth=6,
                                                random_state=0), id="forest"),
    pytest.param(lambda: KNeighborsClassifier(n_neighbors=5), id="knn"),
    pytest.param(lambda: GaussianNB(), id="gaussian_nb"),
    pytest.param(lambda: CategoricalNB(), id="categorical_nb"),
    pytest.param(lambda: MLPClassifier(hidden_layers=(16,), n_epochs=60,
                                       random_state=0), id="mlp"),
    pytest.param(lambda: AdaBoostClassifier(n_estimators=20, max_depth=2,
                                            random_state=0), id="adaboost"),
]


def make_separable(n=200, seed=0):
    """Linearly separable two-class problem."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 2))
    labels = (features[:, 0] + features[:, 1] > 0).astype(int)
    return features, labels


def make_categorical(n=300, seed=0):
    """Categorical problem mimicking locality pairs: label depends on column 0."""
    rng = np.random.default_rng(seed)
    features = rng.integers(1, 5, size=(n, 2)).astype(float)
    labels = (features[:, 0] <= 2).astype(int)
    return features, labels


class TestCommonBehaviour:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_learns_separable_data(self, factory):
        model = factory()
        if isinstance(model, CategoricalNB):
            # A categorical model needs discrete features to be meaningful.
            features, labels = make_categorical(n=200)
        else:
            features, labels = make_separable()
        model.fit(features[:150], labels[:150])
        score = accuracy(labels[150:], model.predict(features[150:]))
        assert score >= 0.85

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_predict_proba_is_a_distribution(self, factory):
        features, labels = make_separable(n=120)
        model = factory().fit(features, labels)
        probabilities = model.predict_proba(features[:10])
        assert probabilities.shape == (10, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)
        assert np.all(probabilities >= 0.0)

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_predictions_within_label_set(self, factory):
        features, labels = make_categorical(n=150)
        model = factory().fit(features, labels)
        predictions = model.predict(features)
        assert set(np.unique(predictions)) <= set(np.unique(labels))

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_single_class_training_set(self, factory):
        features = np.array([[0.0, 1.0], [1.0, 0.0], [0.5, 0.5]])
        labels = np.array([1, 1, 1])
        model = factory().fit(features, labels)
        assert set(model.predict(features)) == {1}

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_string_labels_supported(self, factory):
        features, labels = make_separable(n=100)
        named = np.where(labels == 1, "one", "zero")
        model = factory().fit(features, named)
        predictions = model.predict(features[:5])
        assert set(predictions) <= {"one", "zero"}


class TestDecisionTree:
    def test_depth_limit_respected(self):
        features, labels = make_separable(n=200)
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        assert tree.depth() <= 2
        assert tree.n_leaves() <= 4

    def test_min_samples_leaf(self):
        features, labels = make_separable(n=50)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(features, labels)
        assert tree.n_leaves() <= 3

    def test_feature_importances_sum_to_one(self):
        features, labels = make_separable(n=150)
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_pure_node_stops_growth(self):
        features = np.array([[0.0], [1.0], [2.0], [3.0]])
        labels = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(features, labels)
        assert accuracy(labels, tree.predict(features)) == 1.0


class TestRandomForest:
    def test_more_trees_do_not_hurt(self):
        features, labels = make_separable(n=250, seed=3)
        small = RandomForestClassifier(n_estimators=3, random_state=0).fit(
            features[:200], labels[:200])
        large = RandomForestClassifier(n_estimators=30, random_state=0).fit(
            features[:200], labels[:200])
        small_score = accuracy(labels[200:], small.predict(features[200:]))
        large_score = accuracy(labels[200:], large.predict(features[200:]))
        assert large_score >= small_score - 0.05

    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)


class TestKNN:
    def test_distance_weighting(self):
        features = np.array([[0.0], [1.0], [10.0]])
        labels = np.array([0, 0, 1])
        model = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(
            features, labels)
        assert model.predict([[9.5]])[0] == 1

    def test_manhattan_metric(self):
        features, labels = make_separable(n=100)
        model = KNeighborsClassifier(metric="manhattan").fit(features, labels)
        assert accuracy(labels, model.predict(features)) > 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(metric="cosine")
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="quadratic")


class TestNaiveBayes:
    def test_categorical_nb_matches_conditional_frequencies(self):
        # Feature value 1 -> label 1 (80 %), value 2 -> label 0 (80 %).
        rng = np.random.default_rng(0)
        features = rng.integers(1, 3, size=(400, 1)).astype(float)
        noise = rng.random(400)
        labels = np.where(features[:, 0] == 1, noise < 0.8, noise < 0.2).astype(int)
        model = CategoricalNB().fit(features, labels)
        proba_value1 = model.predict_proba([[1.0]])[0]
        assert proba_value1[list(model.classes_).index(1)] > 0.6

    def test_categorical_nb_unseen_category(self):
        model = CategoricalNB().fit([[1.0], [2.0]], [0, 1])
        probabilities = model.predict_proba([[99.0]])[0]
        assert probabilities == pytest.approx([0.5, 0.5], abs=1e-6)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            CategoricalNB(alpha=0.0)

    def test_gaussian_nb_priors(self):
        features, labels = make_separable(n=100)
        model = GaussianNB().fit(features, labels)
        assert model.priors_.sum() == pytest.approx(1.0)


class TestBoosting:
    def test_boosting_beats_single_stump_on_xor(self):
        rng = np.random.default_rng(1)
        features = rng.integers(0, 2, size=(300, 2)).astype(float)
        labels = (features[:, 0].astype(int) ^ features[:, 1].astype(int))
        stump = DecisionTreeClassifier(max_depth=1).fit(features, labels)
        boosted = AdaBoostClassifier(n_estimators=40, max_depth=2,
                                     random_state=0).fit(features, labels)
        assert accuracy(labels, boosted.predict(features)) >= \
            accuracy(labels, stump.predict(features))

    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)


class TestLogisticRegressionAndMLP:
    def test_logistic_multiclass(self):
        rng = np.random.default_rng(0)
        features = np.vstack([rng.normal(loc=c, scale=0.3, size=(50, 2))
                              for c in (-2.0, 0.0, 2.0)])
        labels = np.repeat([0, 1, 2], 50)
        model = LogisticRegression(n_iterations=400).fit(features, labels)
        assert accuracy(labels, model.predict(features)) > 0.9

    def test_mlp_learns_xor(self):
        features = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 25, dtype=float)
        labels = np.array([0, 1, 1, 0] * 25)
        model = MLPClassifier(hidden_layers=(16, 8), n_epochs=300,
                              learning_rate=0.02, random_state=0)
        model.fit(features, labels)
        assert accuracy(labels, model.predict(features)) >= 0.9
