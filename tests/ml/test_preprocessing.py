"""Unit tests for feature preprocessing."""

import numpy as np
import pytest

from repro.ml import MinMaxScaler, OneHotEncoder, StandardScaler
from repro.ml.base import NotFittedError


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        data = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0)
        assert np.allclose(scaled.std(axis=0), 1.0)

    def test_constant_column_does_not_divide_by_zero(self):
        data = np.array([[2.0, 1.0], [2.0, 3.0]])
        scaled = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit([[0.0], [10.0]])
        assert scaler.transform([[5.0]])[0, 0] == pytest.approx(0.0)


class TestMinMaxScaler:
    def test_range_is_zero_one(self):
        data = np.array([[1.0, -5.0], [3.0, 5.0], [2.0, 0.0]])
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0
        assert scaled[0, 0] == pytest.approx(0.0)
        assert scaled[1, 0] == pytest.approx(1.0)

    def test_constant_column(self):
        scaled = MinMaxScaler().fit_transform([[7.0], [7.0]])
        assert np.allclose(scaled, 0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform([[1.0]])


class TestOneHotEncoder:
    def test_basic_expansion(self):
        data = np.array([[1, 10], [2, 10], [1, 20]])
        encoder = OneHotEncoder().fit(data)
        expanded = encoder.transform(data)
        # Column 0 has 2 categories, column 1 has 2 categories -> 4 outputs.
        assert expanded.shape == (3, 4)
        assert encoder.n_output_features == 4
        assert np.allclose(expanded.sum(axis=1), 2.0)

    def test_unknown_category_maps_to_zero_block(self):
        encoder = OneHotEncoder().fit([[1], [2]])
        expanded = encoder.transform([[3]])
        assert np.allclose(expanded, 0.0)

    def test_column_count_mismatch_rejected(self):
        encoder = OneHotEncoder().fit([[1, 2]])
        with pytest.raises(ValueError):
            encoder.transform([[1]])

    def test_1d_input_promoted(self):
        encoder = OneHotEncoder().fit([1, 2, 3])
        assert encoder.transform([2]).shape == (1, 3)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            OneHotEncoder().transform([[1]])
        with pytest.raises(NotFittedError):
            OneHotEncoder().n_output_features
