"""Docs/examples validation: every documented scenario must actually parse.

The CI ``docs`` job runs this module: each fenced ```json block in
``docs/scenario-format.md`` and every ``examples/*.json`` file must be a
complete scenario that round-trips through ``Scenario.from_json`` — so the
documentation cannot drift from the implementation without failing CI.
"""

import json
import re
from pathlib import Path

import pytest

from repro.api import Scenario

REPO_ROOT = Path(__file__).resolve().parents[1]
SCENARIO_DOC = REPO_ROOT / "docs" / "scenario-format.md"
SERVICE_DOC = REPO_ROOT / "docs" / "service.md"
EXAMPLES_DIR = REPO_ROOT / "examples"

_FENCED_JSON = re.compile(r"```json\n(.*?)```", re.DOTALL)


def doc_json_blocks():
    """Every fenced ```json block of the scenario-format reference."""
    text = SCENARIO_DOC.read_text()
    return [match.strip() for match in _FENCED_JSON.findall(text)]


def test_docs_tree_exists():
    for page in ("architecture.md", "scenario-format.md", "performance.md",
                 "robustness.md"):
        path = REPO_ROOT / "docs" / page
        assert path.exists(), f"missing docs page {path}"
        assert path.read_text().strip(), f"empty docs page {path}"


def test_scenario_doc_has_json_examples():
    assert len(doc_json_blocks()) >= 3


@pytest.mark.parametrize("index", range(len(_FENCED_JSON.findall(
    SCENARIO_DOC.read_text()))))
def test_doc_json_block_round_trips(index):
    block = doc_json_blocks()[index]
    scenario = Scenario.from_json(block)
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    assert Scenario.from_json(scenario.to_json()).fingerprint() == \
        scenario.fingerprint()


@pytest.mark.parametrize("path", sorted(EXAMPLES_DIR.glob("scenario_*.json")),
                         ids=lambda p: p.name)
def test_example_scenario_round_trips(path):
    scenario = Scenario.from_file(path)
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    # The on-disk file is canonical JSON (an edit that breaks formatting or
    # adds unknown fields fails here, not at a user's machine).
    json.loads(path.read_text())


@pytest.mark.parametrize("path", sorted(EXAMPLES_DIR.glob("faults_*.json")),
                         ids=lambda p: p.name)
def test_example_fault_plans_round_trip(path):
    """The chaos-gate fault plans CI runs must parse and round-trip."""
    from repro.api.faults import FaultPlan

    plan = FaultPlan.from_file(path)
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    assert plan.faults, f"{path.name} declares no faults"


def test_example_json_files_are_covered():
    """Every examples/*.json is either a scenario or a fault plan — a new
    kind of example file must be added to these docs tests explicitly."""
    covered = set(EXAMPLES_DIR.glob("scenario_*.json")) \
        | set(EXAMPLES_DIR.glob("faults_*.json"))
    assert set(EXAMPLES_DIR.glob("*.json")) == covered


def test_matrix_example_exercises_all_three_axes():
    scenario = Scenario.from_file(EXAMPLES_DIR / "scenario_matrix.json")
    axes = scenario.axis_values()
    assert set(axes) == {"seed", "key_budget_fraction", "time_budget"}
    assert all(len(values) == 2 for values in axes.values())
    attack_jobs = [job for job in scenario.expand() if job.kind == "attack"]
    assert len(attack_jobs) == 8  # 2 seeds x 2 key sizes x 2 budgets


def service_doc_blocks():
    """Every fenced ```json block of the service-protocol reference."""
    return [match.strip()
            for match in _FENCED_JSON.findall(SERVICE_DOC.read_text())]


def test_service_doc_has_envelope_examples():
    assert len(service_doc_blocks()) >= 6


@pytest.mark.parametrize("index", range(len(_FENCED_JSON.findall(
    SERVICE_DOC.read_text()))))
def test_service_doc_envelope_round_trips(index):
    """Every documented wire example decodes through the real protocol.

    Requests go through the server-side decoder, responses/events through
    the client-side one, and each re-encodes to the identical payload —
    so the protocol page cannot drift from ``repro.api.protocol``.
    """
    from repro.api.protocol import (Event, Request, Response, decode_request,
                                    decode_server_message, encode)

    block = service_doc_blocks()[index]
    payload = json.loads(block)
    if "op" in payload:
        message = decode_request(block)
        assert isinstance(message, Request)
        if "scenario" in message.params:
            # The documented submit body must be a real, valid scenario.
            Scenario.from_dict(message.params["scenario"])
    else:
        message = decode_server_message(block)
        assert isinstance(message, (Response, Event))
        error = getattr(message, "error", None)
        if error is not None:
            from repro.api.protocol import ERROR_CODES

            assert error["code"] in ERROR_CODES
    assert json.loads(encode(message)) == payload


def test_service_doc_error_table_is_complete():
    """The error-code table documents exactly the canonical codes."""
    from repro.api.protocol import ERROR_CODES

    text = SERVICE_DOC.read_text()
    for code in ERROR_CODES:
        assert f"`{code}`" in text, f"service.md does not document {code}"


def test_readme_links_into_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    for page in ("docs/architecture.md", "docs/scenario-format.md",
                 "docs/performance.md"):
        assert page in readme, f"README does not link {page}"
    # CLI drift guards: every current subcommand is documented.
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if hasattr(action, "choices") and action.choices)
    for command in subparsers.choices:
        assert f"{command}" in readme, \
            f"README does not mention the {command!r} subcommand"
