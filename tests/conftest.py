"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.rtlir import Design

#: A small but representative mixed-operation design used across test modules.
MIXER_SOURCE = """
module mixer (
  input clk,
  input rst_n,
  input [7:0] a,
  input [7:0] b,
  input [7:0] c,
  input [7:0] d,
  output reg [7:0] y,
  output [7:0] z
);
  wire [7:0] t1 = a + b;
  wire [7:0] t2 = c + d;
  wire [7:0] t3 = t1 + t2;
  wire [7:0] t4 = a * c;
  wire [7:0] t5 = b << 2;
  wire [7:0] t6 = t4 ^ d;
  assign z = t3 ^ t6;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      y <= 0;
    else if (a > b)
      y <= t3 - t5;
    else
      y <= t4 & d;
  end
endmodule
"""

#: A purely combinational adder chain (structurally regular, + only).
PLUS_CHAIN_SOURCE = """
module plus_chain (
  input [7:0] i0,
  input [7:0] i1,
  input [7:0] i2,
  input [7:0] i3,
  output [7:0] out
);
  wire [7:0] s0 = i0 + i1;
  wire [7:0] s1 = s0 + i2;
  wire [7:0] s2 = s1 + i3;
  wire [7:0] s3 = s2 + i0;
  wire [7:0] s4 = s3 + i1;
  wire [7:0] s5 = s4 + i2;
  assign out = s5;
endmodule
"""


@pytest.fixture
def mixer_design() -> Design:
    """A fresh mixed-operation design (8 lockable operations, several types)."""
    return Design.from_verilog(MIXER_SOURCE, name="mixer")


@pytest.fixture
def plus_chain_design() -> Design:
    """A fresh, fully imbalanced +-chain design (6 additions)."""
    return Design.from_verilog(PLUS_CHAIN_SOURCE, name="plus_chain")


@pytest.fixture
def rng() -> random.Random:
    """A deterministically seeded random source."""
    return random.Random(1234)
