"""Unit tests for design-level analysis and reporting."""

from repro.locking import AssureLocker, ERALocker
from repro.rtlir import analyze_design, class_census, pair_imbalances


class TestPairImbalance:
    def test_imbalance_values(self):
        census = {"+": 7, "-": 5, "*": 2}
        imbalances = pair_imbalances(census, [("+", "-"), ("*", "/")])
        plus = imbalances[0]
        assert plus.imbalance == 2
        assert plus.total == 12
        assert not plus.is_balanced
        mult = imbalances[1]
        assert mult.imbalance == 2
        assert mult.count_second == 0

    def test_balanced_pair(self):
        imbalances = pair_imbalances({"<<": 4, ">>": 4}, [("<<", ">>")])
        assert imbalances[0].is_balanced
        assert imbalances[0].imbalance == 0


class TestClassCensus:
    def test_aggregation(self):
        census = {"+": 3, "-": 1, "<<": 2, "&": 1, "<": 1, "&&": 1}
        classes = class_census(census)
        assert classes["arithmetic"] == 4
        assert classes["shift"] == 2
        assert classes["bitwise"] == 1
        assert classes["relational"] == 1
        assert classes["other"] == 1


class TestDesignReport:
    def test_report_contents(self, mixer_design):
        report = analyze_design(mixer_design)
        assert report.name == "mixer"
        assert report.num_operations == 10
        assert report.key_width == 0
        assert report.census["+"] == 3
        pair_map = {(p.first, p.second): p for p in report.pair_imbalances}
        assert pair_map[("+", "-")].imbalance == 2

    def test_report_text_rendering(self, mixer_design):
        text = analyze_design(mixer_design).to_text()
        assert "Design report: mixer" in text
        assert "lockable operations : 10" in text
        assert "pair imbalances" in text

    def test_locked_design_report_counts_dummies(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 3).design
        report = analyze_design(locked)
        assert report.key_width == 3
        assert report.num_operations == mixer_design.num_operations() + 3

    def test_era_locked_design_is_balanced_in_report(self, mixer_design, rng):
        locked = ERALocker(rng=rng).lock(mixer_design, 8).design
        report = analyze_design(locked)
        affected_ops = {bit.real_op for bit in locked.key_bits} | \
                       {bit.dummy_op for bit in locked.key_bits}
        for pair in report.pair_imbalances:
            if pair.first in affected_ops or pair.second in affected_ops:
                assert pair.is_balanced
