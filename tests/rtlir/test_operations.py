"""Unit tests for the operator taxonomy."""

import pytest

from repro.rtlir.operations import (
    LOCKABLE_OPERATORS,
    NO_OPERATION,
    OPERATOR_ENCODING,
    decode_operator,
    encode_operator,
    is_lockable,
    lockable_operators,
    normalize_operator,
    operator_class,
)


class TestLockability:
    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%", "**", "<<", ">>",
                                    "&", "|", "^", "<", ">", "==", "!="])
    def test_dataflow_operators_are_lockable(self, op):
        assert is_lockable(op)

    @pytest.mark.parametrize("op", ["&&", "||", "===", "!=="])
    def test_control_glue_is_not_lockable(self, op):
        assert not is_lockable(op)

    def test_lockable_operators_listing(self):
        listed = lockable_operators()
        assert set(listed) == set(LOCKABLE_OPERATORS)
        # Canonical order follows the encoding table.
        codes = [OPERATOR_ENCODING[op] for op in listed]
        assert codes == sorted(codes)


class TestEncoding:
    def test_encoding_is_bijective(self):
        codes = list(OPERATOR_ENCODING.values())
        assert len(codes) == len(set(codes))
        for op, code in OPERATOR_ENCODING.items():
            assert decode_operator(code) == op

    def test_zero_is_reserved(self):
        assert NO_OPERATION == 0
        assert 0 not in OPERATOR_ENCODING.values()
        with pytest.raises(KeyError):
            decode_operator(0)

    def test_encode_unknown_raises(self):
        with pytest.raises(KeyError):
            encode_operator("noop")

    def test_encoding_is_stable(self):
        # The locality feature space relies on these exact values.
        assert encode_operator("+") == 1
        assert encode_operator("-") == 2
        assert encode_operator("*") == 3
        assert encode_operator("/") == 4


class TestClasses:
    @pytest.mark.parametrize("op,cls", [
        ("+", "arithmetic"), ("%", "arithmetic"),
        ("<<", "shift"), (">>>", "shift"),
        ("&", "bitwise"), ("~^", "bitwise"),
        ("<", "relational"), ("!=", "relational"),
    ])
    def test_operator_classes(self, op, cls):
        assert operator_class(op) == cls

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError):
            operator_class("&&")


class TestNormalisation:
    def test_xnor_aliases_collapse(self):
        assert normalize_operator("^~") == "~^"
        assert normalize_operator("~^") == "~^"

    def test_other_operators_unchanged(self):
        assert normalize_operator("+") == "+"
