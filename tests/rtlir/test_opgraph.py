"""Unit tests for the dataflow operation graph."""

from repro.rtlir import Design, OperationNode, SignalNode, build_operation_graph
from repro.verilog.parser import parse_module

from ..conftest import MIXER_SOURCE, PLUS_CHAIN_SOURCE


class TestGraphConstruction:
    def test_every_site_becomes_a_node(self, mixer_design):
        graph = build_operation_graph(mixer_design.top)
        assert len(graph.operation_nodes()) == mixer_design.num_operations()

    def test_signal_nodes_present(self, mixer_design):
        graph = build_operation_graph(mixer_design.top)
        names = {node.name for node in graph.signal_nodes()}
        assert {"a", "b", "t1", "t3"}.issubset(names)

    def test_chain_depth(self, plus_chain_design):
        graph = build_operation_graph(plus_chain_design.top)
        # Six chained additions produce a long dependency path.
        assert graph.depth() >= 6

    def test_fanout(self, plus_chain_design):
        graph = build_operation_graph(plus_chain_design.top)
        assert graph.fanout("i0") >= 2
        assert graph.fanout("does_not_exist") == 0

    def test_statistics_keys(self, mixer_design):
        stats = build_operation_graph(mixer_design.top).statistics()
        assert set(stats) == {"num_operations", "num_signals", "num_edges",
                              "depth", "avg_fanout"}
        assert stats["num_operations"] == mixer_design.num_operations()


class TestTopologicalOrder:
    def test_topological_order_respects_dataflow(self, plus_chain_design):
        graph = build_operation_graph(plus_chain_design.top)
        order = graph.topological_site_order()
        # In the chain s0 -> s1 -> ... the additions must come out in order.
        positions = {site.index: position for position, site in enumerate(order)}
        indices = sorted(positions)
        assert [positions[i] for i in indices] == sorted(positions.values())

    def test_order_covers_all_sites(self, mixer_design):
        graph = build_operation_graph(mixer_design.top)
        order = graph.topological_site_order()
        assert len(order) == mixer_design.num_operations()
        assert len({site.index for site in order}) == len(order)

    def test_order_is_deterministic(self, mixer_design):
        first = [s.index for s in
                 build_operation_graph(mixer_design.top).topological_site_order()]
        second = [s.index for s in
                  build_operation_graph(mixer_design.top).topological_site_order()]
        assert first == second

    def test_cyclic_design_does_not_crash(self):
        module = parse_module("""
            module loopy (input [3:0] a, output [3:0] y);
              wire [3:0] u;
              wire [3:0] v = u + a;
              assign u = v - a;
              assign y = v;
            endmodule
        """)
        graph = build_operation_graph(module)
        order = graph.topological_site_order()
        assert len(order) == 2
        assert graph.depth() >= 0


class TestOperationNetworks:
    def test_plus_network_is_connected(self, plus_chain_design):
        graph = build_operation_graph(plus_chain_design.top)
        components = graph.connected_operation_network("+")
        assert len(components) == 1
        assert len(components[0]) == 6

    def test_disjoint_networks_detected(self):
        module = parse_module("""
            module split (input [3:0] a, b, c, d, output [3:0] x, y);
              assign x = a + b;
              assign y = c + d;
            endmodule
        """)
        graph = build_operation_graph(module)
        components = graph.connected_operation_network("+")
        assert len(components) == 2

    def test_node_dataclasses(self):
        assert SignalNode("x") == SignalNode("x")
        assert OperationNode(0, "+") != OperationNode(1, "+")
