"""Unit tests for operation-site collection."""

import random

from repro.locking import LockingSession
from repro.rtlir import Design, collect_sites, operation_census
from repro.verilog.parser import parse_module


class TestBasicCollection:
    def test_census_of_mixer(self, mixer_design):
        census = mixer_design.operation_census()
        assert census == {"+": 3, "*": 1, "<<": 1, "^": 2, ">": 1, "-": 1, "&": 1}

    def test_sites_are_preordered_and_indexed(self, mixer_design):
        sites = mixer_design.sites()
        assert [site.index for site in sites] == list(range(len(sites)))

    def test_grouping_by_operator(self, plus_chain_design):
        sites = plus_chain_design.sites()
        grouped = sites.by_operator()
        assert set(grouped) == {"+"}
        assert len(grouped["+"]) == 6
        assert sites.operators() == {"+"}

    def test_parent_links_are_correct(self, mixer_design):
        for site in mixer_design.sites():
            assert any(child is site.node for child in site.parent.children())


class TestContextExclusions:
    def test_range_expressions_are_not_sites(self):
        module = parse_module("""
            module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);
              assign y = a;
            endmodule
        """)
        assert collect_sites(module).count_by_operator() == {}

    def test_parameter_values_are_not_sites(self):
        module = parse_module("""
            module m (input [7:0] a, output [7:0] y);
              localparam TOTAL = 4 + 4;
              assign y = a;
            endmodule
        """)
        assert collect_sites(module).count_by_operator() == {}

    def test_part_select_bounds_are_not_sites(self):
        module = parse_module("""
            module m (input [15:0] a, output [7:0] y);
              assign y = a[15:8];
            endmodule
        """)
        assert collect_sites(module).count_by_operator() == {}

    def test_bit_select_index_is_a_site(self):
        module = parse_module("""
            module m (input [7:0] a, input [2:0] i, output y);
              assign y = a[i + 1];
            endmodule
        """)
        assert collect_sites(module).count_by_operator() == {"+": 1}

    def test_lhs_index_operations_excluded(self):
        module = parse_module("""
            module m (input clk, input [2:0] i, input d);
              reg [7:0] mem;
              always @(posedge clk) mem[i + 1] <= d;
            endmodule
        """)
        assert collect_sites(module).count_by_operator() == {}

    def test_condition_and_case_expressions_are_sites(self):
        module = parse_module("""
            module m (input [3:0] a, b, output reg y);
              always @(*) begin
                if (a + b > 4)
                  y = 1;
                else
                  case (a - b)
                    4'd0: y = 0;
                    default: y = 1;
                  endcase
              end
            endmodule
        """)
        census = collect_sites(module).count_by_operator()
        assert census == {"+": 1, ">": 1, "-": 1}

    def test_instance_connections_are_sites(self):
        module = parse_module("""
            module top (input [7:0] a, b, output [7:0] y);
              leaf u0 (.x(a + b), .z(y));
            endmodule
        """)
        assert collect_sites(module).count_by_operator() == {"+": 1}

    def test_function_body_operations_are_sites(self):
        module = parse_module("""
            module m (input [7:0] a, output [7:0] y);
              function [7:0] mix;
                input [7:0] v;
                mix = (v << 1) ^ v;
              endfunction
              assign y = mix(a);
            endmodule
        """)
        assert collect_sites(module).count_by_operator() == {"<<": 1, "^": 1}


class TestLockedContextTracking:
    def test_key_controlled_sites_flagged_after_locking(self, mixer_design, rng):
        session = LockingSession(mixer_design, rng=rng)
        ref = session.ops_of_type("+")[0]
        session.add_pair(ref)
        sites = mixer_design.sites()
        locked_sites = [s for s in sites if s.in_locked_branch]
        # The wrapped real operation and its dummy both sit in a locked branch.
        assert len(locked_sites) == 2
        assert {s.op for s in locked_sites} == {"+", "-"}
        assert all(s.is_original is False for s in locked_sites)

    def test_unlocked_design_has_all_original_sites(self, mixer_design):
        sites = mixer_design.sites()
        assert len(sites.originals()) == len(sites)

    def test_census_helper_matches_sites(self, mixer_design):
        assert operation_census(mixer_design.top) == \
            mixer_design.sites().count_by_operator()
