"""Unit tests for the Design wrapper and KeyBit records."""

import pytest

from repro.locking import AssureLocker
from repro.rtlir import Design, KeyBit

from ..conftest import MIXER_SOURCE


class TestConstruction:
    def test_from_verilog_defaults(self):
        design = Design.from_verilog(MIXER_SOURCE)
        assert design.top_name == "mixer"
        assert design.name == "mixer"
        assert not design.is_locked
        assert design.key_width == 0

    def test_from_file(self, tmp_path):
        path = tmp_path / "mixer.v"
        path.write_text(MIXER_SOURCE)
        design = Design.from_file(path)
        assert design.name == "mixer"
        assert design.num_operations() == 10

    def test_explicit_top_selection(self):
        source = MIXER_SOURCE + "\nmodule helper (); endmodule\n"
        design = Design.from_verilog(source, top_name="helper")
        assert design.top.name == "helper"

    def test_unknown_top_raises(self):
        with pytest.raises(ValueError):
            Design.from_verilog(MIXER_SOURCE, top_name="missing")

    def test_empty_source_raises(self):
        with pytest.raises(Exception):
            Design.from_verilog("")


class TestKeyBits:
    def test_key_bit_validation(self):
        with pytest.raises(ValueError):
            KeyBit(index=0, kind="bogus", correct_value=1)
        with pytest.raises(ValueError):
            KeyBit(index=0, kind="operation", correct_value=2)

    def test_correct_key_ordering(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        key = locked.correct_key
        assert len(key) == 4
        for bit in locked.key_bits:
            assert key[bit.index] == bit.correct_value

    def test_correct_key_string_msb_first(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 3).design
        text = locked.correct_key_string()
        assert len(text) == 3
        assert text == "".join(str(b) for b in reversed(locked.correct_key))

    def test_key_bit_lookup(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 2).design
        assert locked.key_bit(1).index == 1
        with pytest.raises(KeyError):
            locked.key_bit(99)

    def test_key_names(self, mixer_design, rng):
        assert mixer_design.key_names() == set()
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 1).design
        assert locked.key_names() == {locked.key_port}


class TestCopyAndSerialisation:
    def test_copy_is_independent(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 3).design
        duplicate = locked.copy()
        duplicate.key_bits.pop()
        duplicate.top.items.pop()
        assert locked.key_width == 3
        assert len(locked.top.items) != len(duplicate.top.items)

    def test_to_verilog_round_trips(self, mixer_design):
        text = mixer_design.to_verilog()
        again = Design.from_verilog(text)
        assert again.operation_census() == mixer_design.operation_census()

    def test_locked_design_text_contains_key_port(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 2).design
        text = locked.to_verilog()
        assert locked.key_port in text
        assert "?" in text  # at least one key-controlled ternary
