"""Unit tests for the benchmark registry."""

import pytest

from repro.bench import (
    UnknownBenchmarkError,
    benchmark_names,
    get_profile,
    load_benchmark,
    load_suite,
)


class TestLookup:
    def test_names_follow_paper_order(self):
        names = benchmark_names()
        assert names[0] == "DES3"
        assert names[-2:] == ["N_2046", "N_1023"]
        assert len(names) == 14

    def test_get_profile(self):
        assert get_profile("MD5").name == "MD5"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownBenchmarkError):
            get_profile("AES_XL")
        with pytest.raises(UnknownBenchmarkError):
            load_benchmark("AES_XL")


class TestLoading:
    def test_full_scale_synthetic_sizes(self):
        # Loading the synthetic designs at full size is cheap enough to test.
        n2046 = load_benchmark("N_2046")
        assert n2046.operation_census() == {"+": 2046}
        n1023 = load_benchmark("N_1023")
        assert n1023.operation_census() == {"+": 1023, "-": 1023}

    def test_scaled_synthetic(self):
        design = load_benchmark("N_2046", scale=0.01)
        assert design.operation_census()["+"] == 20

    def test_profile_benchmark_scaled(self):
        design = load_benchmark("SHA256", scale=0.1, seed=1)
        census = design.operation_census()
        assert census == get_profile("SHA256").scaled(0.1).operations

    def test_full_scale_profile_benchmark(self):
        design = load_benchmark("SASC", seed=0)
        assert design.operation_census() == get_profile("SASC").operations

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_benchmark("MD5", scale=0.0)

    def test_load_suite_subset(self):
        suite = load_suite(["FIR", "IIR"], scale=0.2, seed=0)
        assert set(suite) == {"FIR", "IIR"}
        assert all(design.num_operations() > 0 for design in suite.values())

    def test_load_suite_default_is_full_evaluation_set(self):
        suite = load_suite(scale=0.05, seed=0)
        assert set(suite) == set(benchmark_names())
