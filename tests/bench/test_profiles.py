"""Unit tests for benchmark profiles."""

import pytest

from repro.bench.profiles import (
    BENCHMARK_PROFILES,
    EVALUATION_ORDER,
    SYNTHETIC_PROFILES,
    BenchmarkProfile,
    all_profiles,
)
from repro.rtlir.operations import LOCKABLE_OPERATORS


class TestProfileCatalogue:
    def test_all_fourteen_benchmarks_present(self):
        assert len(EVALUATION_ORDER) == 14
        profiles = all_profiles()
        for name in EVALUATION_ORDER:
            assert name in profiles

    def test_paper_benchmark_names(self):
        expected = {"DES3", "DFT", "FIR", "IDFT", "IIR", "MD5", "RSA", "SHA256",
                    "SASC", "SIM_SPI", "USB_PHY", "I2C_SL"}
        assert expected == set(BENCHMARK_PROFILES)

    def test_synthetic_profiles_match_paper_definition(self):
        n2046 = SYNTHETIC_PROFILES["N_2046"]
        assert n2046.operations == {"+": 2046}
        n1023 = SYNTHETIC_PROFILES["N_1023"]
        assert n1023.operations == {"+": 1023, "-": 1023}

    def test_profiles_use_only_lockable_operators(self):
        for profile in all_profiles().values():
            for op in profile.operations:
                assert op in LOCKABLE_OPERATORS, (profile.name, op)

    def test_crypto_cores_are_xor_add_heavy(self):
        for name in ("DES3", "MD5", "SHA256"):
            profile = BENCHMARK_PROFILES[name]
            bitwise = sum(count for op, count in profile.operations.items()
                          if op in ("^", "&", "|", "~^"))
            assert bitwise + profile.operations.get("+", 0) > \
                profile.total_operations / 2

    def test_filters_are_mac_heavy(self):
        for name in ("FIR", "IIR", "DFT", "IDFT"):
            profile = BENCHMARK_PROFILES[name]
            mac = profile.operations.get("*", 0) + profile.operations.get("+", 0)
            assert mac > profile.total_operations / 2

    def test_controllers_are_small_and_comparison_heavy(self):
        for name in ("SASC", "SIM_SPI", "USB_PHY", "I2C_SL"):
            profile = BENCHMARK_PROFILES[name]
            assert profile.total_operations < 100
            assert profile.operations.get("==", 0) > 0

    def test_profiles_are_imbalanced(self):
        # Every real benchmark must have at least one imbalanced pair,
        # otherwise the paper's premise (ASSURE leaks on them) would not hold.
        from repro.locking.pairs import SYMMETRIC_PAIR_TABLE
        for profile in BENCHMARK_PROFILES.values():
            imbalanced = False
            for first, second in SYMMETRIC_PAIR_TABLE.unordered_pairs():
                if profile.operations.get(first, 0) != profile.operations.get(second, 0):
                    imbalanced = True
            assert imbalanced, profile.name


class TestScaling:
    def test_scaled_preserves_operator_mix(self):
        profile = BENCHMARK_PROFILES["MD5"]
        scaled = profile.scaled(0.25)
        assert set(scaled.operations) == set(profile.operations)
        assert scaled.total_operations < profile.total_operations
        for op, count in scaled.operations.items():
            assert count >= 1

    def test_scale_of_one_is_identity(self):
        profile = BENCHMARK_PROFILES["FIR"]
        assert profile.scaled(1.0).operations == profile.operations

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            BENCHMARK_PROFILES["FIR"].scaled(0.0)

    def test_total_operations(self):
        profile = BenchmarkProfile("t", "test", {"+": 2, "-": 3})
        assert profile.total_operations == 5
