"""Unit tests for the benchmark design generators."""

import pytest

from repro.bench.generators import alternating_network, plus_network, profile_design
from repro.bench.profiles import BENCHMARK_PROFILES, BenchmarkProfile
from repro.locking import odt_from_design
from repro.rtlir import Design
from repro.verilog.parser import parse


class TestPlusNetwork:
    def test_operation_count_exact(self):
        design = plus_network(30)
        assert design.operation_census() == {"+": 30}

    def test_generated_verilog_reparses(self):
        design = plus_network(10, width=16, n_inputs=4, name="small_plus")
        source = parse(design.to_verilog())
        assert source.top.name == "small_plus"

    def test_fully_imbalanced(self):
        odt = odt_from_design(plus_network(20))
        assert odt["+"] == 20

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            plus_network(0)
        with pytest.raises(ValueError):
            plus_network(5, n_inputs=1)


class TestAlternatingNetwork:
    def test_balanced_counts(self):
        design = alternating_network(12)
        assert design.operation_census() == {"+": 12, "-": 12}

    def test_fully_balanced_odt(self):
        odt = odt_from_design(alternating_network(7))
        assert odt["+"] == 0


class TestProfileDesign:
    @pytest.mark.parametrize("name", ["MD5", "FIR", "SASC"])
    def test_census_matches_profile_exactly(self, name):
        profile = BENCHMARK_PROFILES[name].scaled(0.3)
        design = profile_design(profile, seed=0)
        census = design.operation_census()
        assert census == profile.operations

    def test_seed_changes_structure_not_census(self):
        profile = BENCHMARK_PROFILES["RSA"].scaled(0.2)
        first = profile_design(profile, seed=1)
        second = profile_design(profile, seed=2)
        assert first.operation_census() == second.operation_census()
        assert first.to_verilog() != second.to_verilog()

    def test_same_seed_is_deterministic(self):
        profile = BENCHMARK_PROFILES["IIR"].scaled(0.2)
        first = profile_design(profile, seed=5)
        second = profile_design(profile, seed=5)
        assert first.to_verilog() == second.to_verilog()

    def test_sequential_profile_has_register_stage(self):
        profile = BENCHMARK_PROFILES["MD5"].scaled(0.1)
        design = profile_design(profile, seed=0)
        text = design.to_verilog()
        assert "always @(posedge clk" in text
        assert "state_q" in text

    def test_combinational_profile_has_no_always_block(self):
        profile = BenchmarkProfile("comb", "combinational", {"+": 5, "^": 3},
                                   sequential=False)
        design = profile_design(profile, seed=0)
        assert "always" not in design.to_verilog()

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            profile_design(BenchmarkProfile("empty", "none", {}))

    def test_generated_design_is_lockable(self, rng):
        from repro.locking import AssureLocker
        profile = BENCHMARK_PROFILES["USB_PHY"].scaled(0.3)
        design = profile_design(profile, seed=3)
        result = AssureLocker("serial", rng=rng).lock(design, 10)
        assert result.bits_used == 10

    def test_relational_results_are_scalar_wires(self):
        profile = BenchmarkProfile("cmp", "comparison heavy",
                                   {"==": 3, "<": 2, "+": 2}, sequential=False)
        design = profile_design(profile, seed=0)
        text = design.to_verilog()
        # Scalar comparison wires are declared without a range.
        assert "wire n" in text
