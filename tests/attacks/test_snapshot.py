"""Unit and behavioural tests for the RTL SnapShot attack."""

import random

import pytest

from repro.attacks import SnapShotAttack
from repro.bench import plus_network
from repro.locking import AssureLocker, ERALocker
from repro.ml import CategoricalNB


@pytest.fixture
def fast_attack():
    """A SnapShot instance configured for test-suite speed."""
    return SnapShotAttack(model=CategoricalNB(), rounds=12,
                          rng=random.Random(7))


class TestAttackMechanics:
    def test_unlocked_target_rejected(self, mixer_design, fast_attack):
        with pytest.raises(ValueError):
            fast_attack.attack(mixer_design)

    def test_result_fields(self, mixer_design, rng, fast_attack):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 5).design
        result = fast_attack.attack(target, algorithm="assure")
        assert result.design_name == "mixer"
        assert result.key_width == 5
        assert len(result.predicted_key) == 5
        assert len(result.per_bit_correct) == 5
        assert 0.0 <= result.kpa <= 100.0
        assert result.training_size == 12 * 5
        assert result.metadata["locking_algorithm"] == "assure"
        assert result.metadata["rounds"] == 12

    def test_predictions_are_bits(self, mixer_design, rng, fast_attack):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        result = fast_attack.attack(target)
        assert set(result.predicted_key) <= {0, 1}

    def test_target_not_mutated(self, mixer_design, rng, fast_attack):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        before = target.to_verilog()
        fast_attack.attack(target)
        assert target.to_verilog() == before

    def test_attack_many(self, mixer_design, rng, fast_attack):
        targets = [AssureLocker("serial", rng=random.Random(i)).lock(
            mixer_design, 4).design for i in range(3)]
        results = fast_attack.attack_many(targets, algorithm="assure")
        assert len(results) == 3

    def test_attack_many_survives_a_raising_progress_hook(
            self, mixer_design, fast_attack, caplog):
        """Regression: an observer callback must not abort the sweep."""
        targets = [AssureLocker("serial", rng=random.Random(i)).lock(
            mixer_design, 4).design for i in range(3)]
        calls = []

        def bad_hook(done, total, result):
            calls.append(done)
            raise RuntimeError("observer bug")

        with caplog.at_level("WARNING"):
            results = fast_attack.attack_many(targets, algorithm="assure",
                                              progress=bad_hook)
        assert len(results) == 3
        assert calls == [1, 2, 3]  # the hook kept firing after raising
        assert "progress hook raised" in caplog.text

    def test_automl_model_by_default(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        attack = SnapShotAttack(rounds=6, time_budget=2.0, rng=random.Random(3))
        result = attack.attack(target)
        assert result.model_name  # name of the auto-ML winner

    def test_kpa_matches_per_bit_flags(self, mixer_design, rng, fast_attack):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 5).design
        result = fast_attack.attack(target)
        expected = 100.0 * sum(result.per_bit_correct) / len(result.per_bit_correct)
        assert result.kpa == pytest.approx(expected)


class TestAttackEffectiveness:
    """The headline behaviour of the paper, on small designs."""

    def test_snapshot_breaks_assure_on_imbalanced_design(self):
        design = plus_network(40, name="plus40")
        target = AssureLocker("serial", rng=random.Random(0)).lock(
            design, key_budget=30).design
        attack = SnapShotAttack(model=CategoricalNB(), rounds=20,
                                rng=random.Random(1))
        result = attack.attack(target, algorithm="assure")
        # A fully imbalanced design leaks its key almost completely.
        assert result.kpa >= 85.0

    def test_snapshot_fails_against_era(self):
        # Note: on a single-pair design every ERA key bit wraps a '+', so a
        # deterministic classifier trained on the (balanced, signal-free)
        # relocking data lands on one side of the coin per sample — individual
        # samples can score near 0 or near 100.  The meaningful claim is that
        # the attack gains no *reliable* advantage, so we average over several
        # independently locked samples.
        design = plus_network(40, name="plus40")
        kpas = []
        for seed in range(5):
            target = ERALocker(rng=random.Random(seed)).lock(
                design, key_budget=30).design
            attack = SnapShotAttack(model=CategoricalNB(), rounds=20,
                                    rng=random.Random(100 + seed))
            kpas.append(attack.attack(target, algorithm="era").kpa)
        mean_kpa = sum(kpas) / len(kpas)
        assert 20.0 <= mean_kpa <= 80.0

    def test_era_more_resilient_than_assure_on_average(self, plus_chain_design):
        attack = SnapShotAttack(model=CategoricalNB(), rounds=15,
                                rng=random.Random(2))
        assure_kpa = []
        era_kpa = []
        for seed in range(3):
            assure_target = AssureLocker("serial", rng=random.Random(seed)).lock(
                plus_chain_design, 4).design
            era_target = ERALocker(rng=random.Random(seed)).lock(
                plus_chain_design, 4).design
            assure_kpa.append(attack.attack(assure_target).kpa)
            era_kpa.append(attack.attack(era_target).kpa)
        assert sum(assure_kpa) / 3 > sum(era_kpa) / 3
