"""Unit tests for the baseline (non-ML) attacks."""

import random

import pytest

from repro.attacks import MajorityVoteAttack, PairAsymmetryAttack, RandomGuessAttack
from repro.bench import plus_network
from repro.locking import AssureLocker, ERALocker
from repro.locking.pairs import ORIGINAL_ASSURE_TABLE, SYMMETRIC_PAIR_TABLE


class TestRandomGuess:
    def test_requires_locked_target(self, mixer_design, rng):
        with pytest.raises(ValueError):
            RandomGuessAttack(rng).attack(mixer_design)

    def test_kpa_near_fifty_on_large_key(self):
        design = plus_network(120, name="plus120")
        target = AssureLocker("serial", rng=random.Random(0)).lock(design, 100).design
        result = RandomGuessAttack(random.Random(1)).attack(target)
        assert 35.0 <= result.kpa <= 65.0
        assert result.training_size == 0


class TestMajorityVote:
    def test_breaks_imbalanced_assure(self):
        design = plus_network(40, name="plus40")
        target = AssureLocker("serial", rng=random.Random(0)).lock(design, 30).design
        result = MajorityVoteAttack(rounds=20, rng=random.Random(1)).attack(
            target, algorithm="assure")
        assert result.kpa >= 85.0
        assert result.metadata["distinct_pairs"] >= 2

    def test_random_against_era(self):
        design = plus_network(40, name="plus40")
        target = ERALocker(rng=random.Random(0)).lock(design, 30).design
        result = MajorityVoteAttack(rounds=20, rng=random.Random(1)).attack(target)
        assert 30.0 <= result.kpa <= 70.0

    def test_requires_locked_target(self, mixer_design, rng):
        with pytest.raises(ValueError):
            MajorityVoteAttack(rng=rng).attack(mixer_design)


class TestPairAsymmetry:
    def test_resolves_leaky_pairs_with_original_table(self):
        # A design dominated by the operators whose original-ASSURE pairing is
        # asymmetric (Section 3.2): *, ^, %, ** all pair "one way only", so an
        # attacker who knows the table resolves most key bits without training.
        from repro.bench.generators import profile_design
        from repro.bench.profiles import BenchmarkProfile
        profile = BenchmarkProfile("leaky", "leaky-pair heavy design",
                                   {"*": 10, "^": 10, "%": 5, "**": 3, "+": 4},
                                   sequential=False)
        design = profile_design(profile, seed=0)
        locker = AssureLocker("serial", pair_table=ORIGINAL_ASSURE_TABLE,
                              rng=random.Random(0))
        target = locker.lock(design, design.num_operations()).design
        result = PairAsymmetryAttack(rng=random.Random(1)).attack(target)
        assert result.metadata["resolved_bits"] > 0
        assert result.metadata["resolved_fraction"] > 0.5
        # Every resolved bit is correct, so KPA clearly beats the random guess.
        assert result.kpa > 65.0

    def test_cannot_resolve_fixed_symmetric_pairs(self, mixer_design):
        locker = AssureLocker("serial", pair_table=SYMMETRIC_PAIR_TABLE,
                              rng=random.Random(0))
        target = locker.lock(mixer_design, mixer_design.num_operations()).design
        result = PairAsymmetryAttack(rng=random.Random(1)).attack(target)
        assert result.metadata["resolved_bits"] == 0

    def test_resolved_bits_are_always_correct(self, mixer_design):
        locker = AssureLocker("serial", pair_table=ORIGINAL_ASSURE_TABLE,
                              rng=random.Random(2))
        target = locker.lock(mixer_design, mixer_design.num_operations()).design
        attack = PairAsymmetryAttack(rng=random.Random(3))
        result = attack.attack(target)
        # Re-derive which bits were resolvable and check each one individually.
        from repro.attacks import LocalityExtractor
        for locality, predicted, correct in zip(
                LocalityExtractor().extract(target),
                result.predicted_key, result.correct_key):
            decision = attack._decide(locality.features[0], locality.features[1])
            if decision is not None:
                assert predicted == correct

    def test_requires_locked_target(self, mixer_design):
        with pytest.raises(ValueError):
            PairAsymmetryAttack().attack(mixer_design)
