"""Unit tests for SnapShot locality extraction."""

import random

import numpy as np
import pytest

from repro.attacks import LocalityExtractor
from repro.locking import AssureLocker, LockingSession
from repro.rtlir import Design, encode_operator
from repro.verilog import ast


class TestExtraction:
    def test_unlocked_design_rejected(self, mixer_design):
        with pytest.raises(ValueError):
            LocalityExtractor().extract(mixer_design)

    def test_one_locality_per_key_bit(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 5).design
        localities = LocalityExtractor().extract(locked)
        assert len(localities) == 5
        assert [loc.key_index for loc in localities] == list(range(5))

    def test_pair_features_encode_branch_operators(self, mixer_design, rng):
        session = LockingSession(mixer_design, rng=rng)
        ref = session.ops_of_type("*")[0]
        session.add_pair(ref, correct_value=1)
        locality = LocalityExtractor().extract(mixer_design)[0]
        assert locality.label == 1
        assert locality.features[0] == encode_operator("*")
        assert locality.features[1] == encode_operator("/")

    def test_false_branch_real_operation(self, mixer_design, rng):
        session = LockingSession(mixer_design, rng=rng)
        ref = session.ops_of_type("*")[0]
        session.add_pair(ref, correct_value=0)
        locality = LocalityExtractor().extract(mixer_design)[0]
        assert locality.label == 0
        assert locality.features[0] == encode_operator("/")
        assert locality.features[1] == encode_operator("*")

    def test_extract_specific_indices(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 6).design
        subset = LocalityExtractor().extract(locked, key_indices=[2, 4])
        assert [loc.key_index for loc in subset] == [2, 4]

    def test_matrix_shape_and_labels(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        features, labels = LocalityExtractor().extract_matrix(locked)
        assert features.shape == (4, 2)
        assert labels.tolist() == locked.correct_key

    def test_empty_matrix(self):
        extractor = LocalityExtractor()
        features, labels = extractor.as_matrix([])
        assert features.shape == (0, 2)
        assert labels.shape == (0,)

    def test_invalid_feature_set(self):
        with pytest.raises(ValueError):
            LocalityExtractor("deluxe")


class TestNestedAndNonOperationBits:
    def test_relocked_pair_resolves_nested_branch(self, plus_chain_design):
        first = AssureLocker("serial", rng=random.Random(0)).lock(
            plus_chain_design, 4)
        second = AssureLocker("random", rng=random.Random(1)).relock(
            first.design, 4)
        localities = LocalityExtractor().extract(second.design)
        assert len(localities) == 8
        codes = {encode_operator("+"), encode_operator("-")}
        for locality in localities:
            assert set(locality.features.astype(int)) <= codes

    def test_branch_locking_bit_has_no_pair_features(self, mixer_design, rng):
        locker = AssureLocker(rng=rng)
        locked = locker.lock_branches(mixer_design, max_branches=1).design
        locality = LocalityExtractor().extract(locked)[0]
        assert locality.kind == "branch"
        assert locality.features.tolist() == [0.0, 0.0]

    def test_constant_locking_bits_have_no_pair_features(self, rng):
        design = Design.from_verilog(
            "module c (input [3:0] a, output [3:0] y); assign y = a + 4'd5; endmodule")
        locker = AssureLocker(rng=rng)
        locked = locker.lock_constants(design, max_constants=1).design
        localities = LocalityExtractor().extract(locked)
        assert len(localities) == 4
        assert all(loc.kind == "constant" for loc in localities)
        assert all(loc.features.tolist() == [0.0, 0.0] for loc in localities)


class TestExtendedFeatures:
    def test_extended_feature_width(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 3).design
        extractor = LocalityExtractor("extended")
        assert extractor.n_features == 5
        features, _ = extractor.extract_matrix(locked)
        assert features.shape == (3, 5)

    def test_extended_features_include_container_code(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 6).design
        features, _ = LocalityExtractor("extended").extract_matrix(locked)
        container_codes = set(features[:, 4].astype(int).tolist())
        # The mixer has locked operations in both assigns and the always block.
        assert len(container_codes) >= 2

    def test_extended_parent_code(self, rng):
        design = Design.from_verilog("""
        module p (input [3:0] a, b, c, output [3:0] y);
          assign y = (a + b) * c;
        endmodule
        """)
        session = LockingSession(design, rng=rng)
        add_ref = session.ops_of_type("+")[0]
        session.add_pair(add_ref)
        features, _ = LocalityExtractor("extended").extract_matrix(design)
        assert features[0, 2] == encode_operator("*")


class TestBehavioralFeatures:
    def test_behavioral_feature_width(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 3).design
        extractor = LocalityExtractor("behavioral")
        assert extractor.n_features == 3
        features, labels = extractor.extract_matrix(locked)
        assert features.shape == (3, 3)
        assert labels.shape == (3,)

    def test_behavioral_pair_columns_match_pair_set(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        pair_features, _ = LocalityExtractor("pair").extract_matrix(locked)
        behavioral, _ = LocalityExtractor("behavioral").extract_matrix(locked)
        assert np.array_equal(behavioral[:, :2], pair_features)

    def test_behavioral_sensitivity_in_unit_interval(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 5).design
        features, _ = LocalityExtractor(
            "behavioral", behavior_vectors=16).extract_matrix(locked)
        sensitivities = features[:, 2]
        assert np.all(sensitivities >= 0.0) and np.all(sensitivities <= 1.0)
        # Combinationally observable key bits must show some sensitivity.
        assert sensitivities.max() > 0.0

    def test_behavioral_extraction_is_deterministic(self, mixer_design, rng):
        locked = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        first, _ = LocalityExtractor("behavioral").extract_matrix(locked)
        second, _ = LocalityExtractor("behavioral").extract_matrix(locked)
        assert np.array_equal(first, second)

    def test_invalid_behavior_vectors_rejected(self):
        with pytest.raises(ValueError):
            LocalityExtractor("behavioral", behavior_vectors=0)
