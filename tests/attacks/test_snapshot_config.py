"""Tests for SnapShot configuration knobs (training-set capping, budgets)."""

import random

import pytest

from repro.attacks import SnapShotAttack
from repro.locking import AssureLocker
from repro.ml import CategoricalNB, KNeighborsClassifier


class TestTrainingSetCap:
    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            SnapShotAttack(max_training_samples=0)

    def test_large_training_set_is_subsampled(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 5).design
        attack = SnapShotAttack(model=CategoricalNB(), rounds=10,
                                max_training_samples=17,
                                rng=random.Random(0))
        training = attack.build_training_set(target)
        assert training.size == 50  # the builder itself is not capped
        model = attack.train_model(training)
        # The model was fitted (on the capped subsample) and predicts bits.
        predictions = attack.predict_key(model, target)
        assert len(predictions) == 5

    def test_cap_does_not_change_result_shape(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 5).design
        capped = SnapShotAttack(model=CategoricalNB(), rounds=10,
                                max_training_samples=20,
                                rng=random.Random(1)).attack(target)
        uncapped = SnapShotAttack(model=CategoricalNB(), rounds=10,
                                  rng=random.Random(1)).attack(target)
        assert capped.key_width == uncapped.key_width
        assert 0.0 <= capped.kpa <= 100.0


class TestExplicitRelockBudget:
    def test_relock_budget_propagates_to_metadata(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 6).design
        attack = SnapShotAttack(model=CategoricalNB(), rounds=5,
                                relock_budget=3, rng=random.Random(2))
        result = attack.attack(target)
        assert result.metadata["relock_budget"] == 3
        assert result.training_size == 15


class TestKnnChunking:
    def test_chunked_prediction_matches_unchunked(self):
        import numpy as np
        rng = np.random.default_rng(0)
        features = rng.integers(0, 4, size=(600, 3)).astype(float)
        labels = (features[:, 0] > 1).astype(int)
        model = KNeighborsClassifier(n_neighbors=5).fit(features, labels)
        # More query rows than the internal chunk size exercises the chunked
        # code path; results must be identical to a single-shot computation.
        queries = features[:300]
        chunked = model.predict_proba(queries)
        single = model._chunk_proba(queries)
        assert np.allclose(chunked, single)
