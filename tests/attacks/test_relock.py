"""Unit tests for training-set construction by self-referencing."""

import random

import numpy as np
import pytest

from repro.attacks import LocalityExtractor, TrainingSetBuilder
from repro.locking import AssureLocker, ERALocker


class TestTrainingSetBuilder:
    def test_unlocked_target_rejected(self, mixer_design, rng):
        with pytest.raises(ValueError):
            TrainingSetBuilder(rng=rng).build(mixer_design)

    def test_invalid_round_count(self):
        with pytest.raises(ValueError):
            TrainingSetBuilder(rounds=0)

    def test_training_set_size(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 5).design
        training = TrainingSetBuilder(rounds=6, rng=random.Random(1)).build(target)
        assert training.rounds == 6
        assert training.bits_per_round == 5
        assert training.size == 30
        assert training.features.shape == (30, 2)
        assert training.labels.shape == (30,)

    def test_explicit_relock_budget(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 3).design
        training = TrainingSetBuilder(rounds=4, relock_budget=2,
                                      rng=random.Random(2)).build(target)
        assert training.size == 8

    def test_target_not_mutated(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        text_before = target.to_verilog()
        TrainingSetBuilder(rounds=3, rng=random.Random(3)).build(target)
        assert target.to_verilog() == text_before
        assert target.key_width == 4

    def test_labels_only_cover_new_bits(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        training = TrainingSetBuilder(rounds=5, rng=random.Random(4)).build(target)
        # Training labels are the relocking keys, which are random: over 20
        # samples both values should appear with overwhelming probability.
        assert set(np.unique(training.labels)) == {0, 1}
        assert 0.0 < training.label_balance() < 1.0

    def test_feature_space_matches_extractor(self, mixer_design, rng):
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 3).design
        extractor = LocalityExtractor("extended")
        training = TrainingSetBuilder(extractor=extractor, rounds=2,
                                      rng=random.Random(5)).build(target)
        assert training.features.shape[1] == extractor.n_features

    def test_build_survives_a_raising_progress_hook(self, mixer_design, rng,
                                                    caplog):
        """Regression: an observer callback must not abort the rounds."""
        target = AssureLocker("serial", rng=rng).lock(mixer_design, 4).design
        calls = []

        def bad_hook(done, rounds):
            calls.append(done)
            raise RuntimeError("observer bug")

        with caplog.at_level("WARNING"):
            training = TrainingSetBuilder(
                rounds=3, rng=random.Random(6)).build(target,
                                                      progress=bad_hook)
        assert training.rounds == 3
        assert calls == [1, 2, 3]
        assert "progress hook raised" in caplog.text


class TestSignalContent:
    def test_imbalanced_target_produces_biased_observations(self, plus_chain_design):
        # On a +-only design locked by plain ASSURE the '+' appears as the
        # real operation in the training set far more often than '-'.
        target = AssureLocker("serial", rng=random.Random(0)).lock(
            plus_chain_design, 4).design
        training = TrainingSetBuilder(rounds=20, rng=random.Random(1)).build(target)
        from repro.rtlir import encode_operator
        plus, minus = encode_operator("+"), encode_operator("-")
        real_ops = np.where(training.labels == 1,
                            training.features[:, 0], training.features[:, 1])
        plus_fraction = np.mean(real_ops == plus)
        assert plus_fraction > 0.55

    def test_era_balanced_target_produces_contradictory_observations(
            self, plus_chain_design):
        target = ERALocker(rng=random.Random(0)).lock(plus_chain_design, 6).design
        training = TrainingSetBuilder(rounds=20, rng=random.Random(1)).build(target)
        from repro.rtlir import encode_operator
        plus = encode_operator("+")
        real_ops = np.where(training.labels == 1,
                            training.features[:, 0], training.features[:, 1])
        plus_fraction = np.mean(real_ops == plus)
        assert 0.35 < plus_fraction < 0.65
