"""Unit tests for the KPA metric and aggregation helpers."""

import pytest

from repro.attacks.kpa import (
    RANDOM_GUESS_KPA,
    KpaAggregate,
    KpaSample,
    aggregate_by,
    average_kpa,
    kpa,
)


class TestKpa:
    def test_extremes(self):
        assert kpa([1, 1, 0], [1, 1, 0]) == 100.0
        assert kpa([0, 0, 1], [1, 1, 0]) == 0.0

    def test_partial(self):
        assert kpa([1, 0, 1, 0], [1, 0, 0, 1]) == 50.0

    def test_random_guess_reference(self):
        assert RANDOM_GUESS_KPA == 50.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kpa([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kpa([1, 0], [1])


class TestAggregation:
    def _samples(self):
        return [
            KpaSample("MD5", "assure", 80.0, 100),
            KpaSample("MD5", "era", 50.0, 100),
            KpaSample("SHA256", "assure", 70.0, 120),
            KpaSample("SHA256", "era", 45.0, 120),
        ]

    def test_aggregate_from_values(self):
        agg = KpaAggregate.from_values([40.0, 60.0])
        assert agg.mean == 50.0
        assert agg.minimum == 40.0
        assert agg.maximum == 60.0
        assert agg.count == 2

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            KpaAggregate.from_values([])

    def test_aggregate_by_algorithm(self):
        result = aggregate_by(self._samples(), key="algorithm")
        assert result["assure"].mean == 75.0
        assert result["era"].mean == 47.5

    def test_aggregate_by_benchmark(self):
        result = aggregate_by(self._samples(), key="design_name")
        assert result["MD5"].count == 2

    def test_aggregate_invalid_key(self):
        with pytest.raises(ValueError):
            aggregate_by(self._samples(), key="model")

    def test_average_kpa(self):
        assert average_kpa({"MD5": 80.0, "SHA256": 70.0}) == 75.0
        with pytest.raises(ValueError):
            average_kpa({})
