"""Regression pins: the sweep fast path changes *speed*, never *numbers*.

`functional_kpa`, `key_bit_sensitivity`, `functional_corruption` and
`TrainingSetBuilder.build` moved from per-key batch loops onto per-lane key
sweeps (plus the process-wide plan cache).  Every one of them must produce
results identical to the pre-sweep implementation on seeded runs — asserted
here both against the scalar engine (forced through the same `key_sweep`
entry point every consumer calls) and against literal pinned values.
"""

import random

import numpy as np
import pytest

import repro.sim as sim_package
from repro.attacks import LocalityExtractor, TrainingSetBuilder
from repro.attacks.kpa import functional_kpa, functional_kpa_many
from repro.bench import load_benchmark
from repro.locking import (
    AssureLocker,
    flip_bits,
    functional_corruption,
    key_bit_sensitivity,
)
from repro.rtlir import Design, KeyBit
from repro.sim import check_equivalence, key_sweep, output_corruption

#: Pinned literals (exact rationals of deterministic integer simulations).
PINNED_WRONG_KEY_FKPA = 3.125
PINNED_SENSITIVITY = [0.8125, 0.0, 0.0, 0.0]


def _run_on_both_engines(fn):
    """Run ``fn`` once on the batch sweep and once forced through scalar."""
    batch_result = fn()
    original = sim_package.key_sweep

    def scalar_only(design, inputs, keys, n=None, engine="batch",
                    max_lanes=None):
        return original(design, inputs, keys, n=n, engine="scalar")

    sim_package.key_sweep = scalar_only
    try:
        scalar_result = fn()
    finally:
        sim_package.key_sweep = original
    return batch_result, scalar_result


def _locked_md5(seed=0, scale=0.15):
    design = load_benchmark("MD5", scale=scale, seed=seed)
    budget = max(1, int(0.75 * design.num_operations()))
    return AssureLocker("serial", rng=random.Random(seed),
                        track_metrics=False).lock(design, budget).design


class TestSeededResultsMatchScalarEngine:
    def test_functional_kpa(self):
        locked = _locked_md5()
        wrong = flip_bits(locked.correct_key, range(0, locked.key_width, 3))
        batch_value, scalar_value = _run_on_both_engines(
            lambda: functional_kpa(locked, wrong, vectors=24,
                                   rng=random.Random(7)))
        assert batch_value == scalar_value

    def test_key_bit_sensitivity(self):
        locked = _locked_md5()
        batch_profile, scalar_profile = _run_on_both_engines(
            lambda: key_bit_sensitivity(locked, vectors=16,
                                        rng=random.Random(8)))
        assert batch_profile == scalar_profile

    def test_functional_corruption(self):
        locked = _locked_md5()
        batch_report, scalar_report = _run_on_both_engines(
            lambda: functional_corruption(locked, vectors=16, wrong_keys=3,
                                          rng=random.Random(9)))
        assert batch_report.per_key_rates == scalar_report.per_key_rates
        assert batch_report.avalanche == scalar_report.avalanche

    def test_training_set_builder_behavioral(self):
        locked = _locked_md5()

        def build():
            builder = TrainingSetBuilder(
                extractor=LocalityExtractor("behavioral",
                                            behavior_vectors=12),
                rounds=3, rng=random.Random(11))
            return builder.build(locked)

        batch_set, scalar_set = _run_on_both_engines(build)
        assert np.array_equal(batch_set.features, scalar_set.features)
        assert np.array_equal(batch_set.labels, scalar_set.labels)
        assert batch_set.rounds == scalar_set.rounds
        assert batch_set.bits_per_round == scalar_set.bits_per_round
        # Behavioural features are non-degenerate: the sweep really probed.
        assert batch_set.features.shape[1] == 3

    def test_training_set_builder_reports_progress(self):
        locked = _locked_md5()
        seen = []
        builder = TrainingSetBuilder(rounds=3, rng=random.Random(12))
        builder.build(locked, progress=lambda done, total:
                      seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestPinnedValues:
    """Literal pins of seeded runs — any drift is a semantics change."""

    def test_functional_kpa_pinned(self):
        locked = _locked_md5()
        assert functional_kpa(locked, locked.correct_key, vectors=32,
                              rng=random.Random(0)) == 100.0
        wrong = flip_bits(locked.correct_key, range(locked.key_width))
        value = functional_kpa(locked, wrong, vectors=32,
                               rng=random.Random(0))
        assert value == PINNED_WRONG_KEY_FKPA

    def test_key_bit_sensitivity_pinned(self):
        locked = _locked_md5()
        profile = key_bit_sensitivity(locked, vectors=16,
                                      rng=random.Random(1),
                                      key_indices=[0, 1, 2, 3])
        assert profile == PINNED_SENSITIVITY

    def test_functional_kpa_many_matches_singles(self):
        locked = _locked_md5()
        candidates = [
            locked.correct_key,
            flip_bits(locked.correct_key, [0]),
            flip_bits(locked.correct_key, range(locked.key_width)),
        ]
        many = functional_kpa_many(locked, candidates, vectors=24,
                                   rng=random.Random(2))
        singles = [functional_kpa(locked, candidate, vectors=24,
                                  rng=random.Random(2))
                   for candidate in candidates]
        assert many == singles
        assert many[0] == 100.0


# ---------------------------------------------------------------------------
# Scalar fallback of the high-level checks on uncompilable designs
# ---------------------------------------------------------------------------


UNCOMPILABLE = """
module oddball (input [3:0] a, input [1:0] n, input [1:0] lock_key,
                output [7:0] y, output [3:0] z);
  wire [3:0] t = lock_key[0] ? (a + 1) : (a - 1);
  assign y = {n{a}};
  assign z = lock_key[1] ? t : (t ^ 4'b0101);
endmodule
"""

UNCOMPILABLE_ORIGINAL = """
module oddball_ref (input [3:0] a, input [1:0] n,
                    output [7:0] y, output [3:0] z);
  assign y = {n{a}};
  assign z = a + 1;
endmodule
"""


def _oddball_locked():
    design = Design.from_verilog(UNCOMPILABLE)
    design.key_port = "lock_key"
    design.key_bits = [
        KeyBit(index=0, kind="operation", correct_value=1),
        KeyBit(index=1, kind="operation", correct_value=1),
    ]
    return design


class TestUncompilableDesignFallback:
    def test_check_equivalence_matches_scalar_engine(self):
        original = Design.from_verilog(UNCOMPILABLE_ORIGINAL)
        locked = _oddball_locked()
        key = locked.correct_key
        batch = check_equivalence(original, locked, key=key, vectors=24,
                                  rng=random.Random(3), engine="batch")
        scalar = check_equivalence(original, locked, key=key, vectors=24,
                                   rng=random.Random(3), engine="scalar")
        assert batch.mismatches == scalar.mismatches
        assert batch.first_mismatch == scalar.first_mismatch
        assert batch.equivalent

    def test_output_corruption_matches_scalar_engine(self):
        locked = _oddball_locked()
        correct = locked.correct_key
        wrong = flip_bits(correct, [0, 1])
        batch = output_corruption(locked, correct, wrong, vectors=24,
                                  rng=random.Random(4), engine="batch")
        scalar = output_corruption(locked, correct, wrong, vectors=24,
                                   rng=random.Random(4), engine="scalar")
        assert batch == scalar
        assert batch > 0.0

    def test_metric_consumers_fall_back_per_key(self):
        locked = _oddball_locked()
        profile = key_bit_sensitivity(locked, vectors=12,
                                      rng=random.Random(5))
        assert len(profile) == 2
        assert any(value > 0.0 for value in profile)
        value = functional_kpa(locked, flip_bits(locked.correct_key, [1]),
                               vectors=12, rng=random.Random(6))
        assert 0.0 <= value < 100.0
